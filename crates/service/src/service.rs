//! The long-running scheduling daemon: request intake, the priority queue,
//! the worker pool, result streaming — and the robustness layer that keeps
//! all of it alive across crashes and overload.
//!
//! Architecture (the scheduler/runner split of dslab, adapted to a
//! service): schedulers stay pure functions of `(graph, platform, model)`;
//! this module owns everything stateful — connections, the job queue, the
//! schedule cache, statistics. Workers are `std::thread::scope` threads
//! sharing the service by reference (no `Arc` of the service itself), the
//! same pool discipline as [`crate::runner`], with a condition variable
//! instead of a job-index counter because the queue is dynamic.
//!
//! Each submission carries a handle to its connection's writer; whichever
//! worker finishes a job serializes the result and writes it under the
//! writer's lock as one complete line, so concurrent jobs never interleave
//! bytes within a line. Responses stream in *completion* order (priority
//! first), not submission order — clients match results by `id`.
//!
//! ## Durability and graceful degradation
//!
//! With `--ledger PATH` every accepted job is written ahead to an
//! append-only NDJSON event log ([`crate::ledger`]) *before* it enters the
//! queue, and its outcome is recorded *before* the response line goes out.
//! On startup [`Service::with_ledger`] replays the log: acknowledged
//! outcomes rehydrate the schedule/sim caches, unacknowledged jobs
//! re-enter the queue in their original priority/FIFO order, and jobs that
//! took the daemon down more than `max_retries` times are tombstoned as
//! poison instead of crash-looping. Because every job is deterministic,
//! recovery is just re-running specs — restarted results are bit-identical
//! to an uninterrupted run (the fault-injection harness in
//! `tests/service_recovery.rs` SIGKILLs the daemon mid-batch to prove it).
//!
//! Under load the daemon degrades in stages rather than falling over: past
//! the queue's high-water mark new work competes by priority (the
//! lowest-priority newest entry is shed with an `overloaded` error and a
//! `retry_after_ms` hint), at the hard cap submissions are rejected
//! outright, per-job wall-clock deadlines turn stragglers into `timeout`
//! errors, and a worker panic re-queues the job at reduced priority
//! (deterministic backoff by position, not wall-clock) up to `max_retries`
//! before the job is poisoned.

use crate::cache::{
    run_job_probed, run_portfolio_members, run_sim_job_probed, ConstructProbe, JobOutcome,
    Registry, ServiceStats, SimOutcome, SimRunError, StatsGauges, PHASES,
};
use crate::ledger::{key_hash, Ledger, LedgerError, LedgerOutcome, LedgerRecord, Replay};
use crate::protocol::{
    AckResponse, ErrorResponse, MetricsResponse, ReadyResponse, Request, ResolvedJob, ResolvedSim,
    ResultResponse, SimResultResponse, PROTOCOL_VERSION,
};
use crate::queue::PriorityQueue;
use onesched_heuristics::ScanStats;
use onesched_prof::AllocSnapshot;
use onesched_trace::{prometheus_text, Clock, Gauge, MetricsHub, TraceEvent, Tracer, WallClock};
use serde::Serialize;
use std::collections::{BTreeMap, BTreeSet};
use std::io::{self, BufRead, Write};
use std::net::{TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// A line-oriented output shared between the intake thread and the workers.
pub type SharedWriter = Arc<Mutex<Box<dyn Write + Send>>>;

/// Lock a mutex, recovering from poisoning. Everything the daemon guards —
/// counters, caches, the queue, a writer — is valid at every instruction
/// boundary, so a panicking thread elsewhere must not cascade into wedging
/// the rest of the worker pool.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Serialize a response line. The response types cannot fail to serialize,
/// but the answer path must never panic a worker, so the impossible case
/// degrades to a fixed protocol error line.
fn to_line<T: Serialize>(value: &T) -> String {
    serde_json::to_string(value).unwrap_or_else(|_| {
        r#"{"op":"error","message":"internal: response serialization failed"}"#.to_string()
    })
}

/// A writer that discards everything: where recovered (ownerless) jobs
/// stream their results — the outcomes land in the caches and the ledger,
/// which is what the original clients will be answered from.
fn sink_writer() -> SharedWriter {
    Arc::new(Mutex::new(Box::new(io::sink())))
}

/// Default bound on queued jobs (see [`ServiceConfig::queue_cap`]).
pub const DEFAULT_QUEUE_CAP: usize = 16_384;

/// Default bound on construction attempts per job (see
/// [`ServiceConfig::max_retries`]).
pub const DEFAULT_MAX_RETRIES: u32 = 2;

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads serving the job queue.
    pub workers: usize,
    /// Maximum schedule-cache entries (FIFO eviction). The simulation
    /// cache gets the same capacity.
    pub cache_capacity: usize,
    /// Maximum queued (accepted but unfinished) jobs. Submissions beyond
    /// the cap are answered with a protocol `error` instead of growing the
    /// queue unboundedly — backpressure a flooding client can see.
    pub queue_cap: usize,
    /// How many times a job that panicked a worker (or repeatedly took
    /// the daemon down, per the ledger's `started` count) is retried
    /// before being tombstoned as poison.
    pub max_retries: u32,
    /// Per-job wall-clock deadline, measured from acceptance. Checked at
    /// dequeue and between the construct/execute stages; an expired job is
    /// answered with a `timeout` protocol error. `None` disables it.
    pub timeout: Option<Duration>,
    /// Queue depth at which admission control starts shedding
    /// lowest-priority work (`None`: three quarters of `queue_cap`).
    /// Setting it to `queue_cap` disables shedding, leaving only the hard
    /// cap.
    pub high_water: Option<usize>,
    /// Structured-trace sink (`--trace PATH`): every job's span tree is
    /// appended as `onesched-trace/v1` NDJSON. `None` disables span
    /// recording entirely; the metrics hub is always on. A path that
    /// cannot be opened degrades to no tracing (with a stderr note), not
    /// a dead daemon.
    pub trace: Option<PathBuf>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: crate::runner::default_threads(),
            cache_capacity: 1024,
            queue_cap: DEFAULT_QUEUE_CAP,
            max_retries: DEFAULT_MAX_RETRIES,
            timeout: None,
            high_water: None,
            trace: None,
        }
    }
}

/// What a queued submission asks for.
enum Work {
    /// Construct a schedule (`submit`).
    Job(ResolvedJob),
    /// Construct, then execute under perturbation (`simulate`).
    Sim(ResolvedJob, ResolvedSim),
}

impl Work {
    /// The canonical-spec digest joining this work's ledger events.
    fn hash(&self) -> String {
        match self {
            Work::Job(job) => key_hash(&job.key),
            Work::Sim(job, sim) => key_hash(&format!("{}|{}", job.key, sim.key)),
        }
    }
}

/// One queued submission: the resolved work plus where its result goes and
/// the robustness bookkeeping (ledger seq, deadline, attempt count).
struct Ticket {
    /// The daemon's submission sequence number (the ledger join key).
    seq: u64,
    id: String,
    /// The priority the client asked for (retries re-queue below it).
    priority: i64,
    /// Construction attempts so far (in-process panics plus, for
    /// recovered jobs, the ledger's `started` count).
    attempts: u32,
    /// Wall-clock deadline on the service clock (microseconds), when the
    /// service has a timeout configured.
    deadline: Option<u64>,
    /// Acceptance time on the service clock, microseconds — the root
    /// `job` span's start and the queue-wait measurement origin.
    accepted_us: u64,
    /// Canonical-spec digest ([`Work::hash`], precomputed).
    key: String,
    work: Work,
    out: SharedWriter,
}

/// What [`Service::with_ledger`] found and did while replaying the ledger.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct RecoveryReport {
    /// Records in the ledger's valid prefix.
    pub events_replayed: usize,
    /// Whether a torn tail (crash mid-append) was truncated.
    pub torn_tail: bool,
    /// Unacknowledged jobs re-queued for execution.
    pub jobs_requeued: usize,
    /// Acknowledged outcomes rehydrated into the schedule/sim caches.
    pub results_rehydrated: usize,
    /// Jobs tombstoned as poison (`started` more than `max_retries`
    /// times without completing).
    pub poisoned: usize,
    /// Submitted records whose spec no longer resolves (tombstoned).
    pub skipped: usize,
}

/// A `submitted` record folded together with its lifecycle events during
/// recovery.
struct PendingSub {
    id: String,
    hash: String,
    priority: i64,
    job: crate::protocol::JobSpec,
    sim: Option<crate::protocol::SimSpec>,
    starts: u32,
    resolved: bool,
    outcome: Option<LedgerOutcome>,
}

/// The scheduling service. Create one with [`Service::new`] (in-memory
/// only) or [`Service::with_ledger`] (durable, crash-recoverable), then
/// drive it with [`Service::serve_stdio`] or [`Service::serve_tcp`] (or
/// feed request lines directly through [`Service::serve_reader`] for
/// embedding/tests).
pub struct Service {
    cfg: ServiceConfig,
    queue: Mutex<PriorityQueue<Ticket>>,
    ready: Condvar,
    registry: Mutex<Registry>,
    sim_registry: Mutex<Registry<SimOutcome>>,
    stats: Mutex<ServiceStats>,
    ledger: Option<Mutex<Ledger>>,
    /// Canonical-spec digests tombstoned as poison: resubmissions are
    /// rejected at intake instead of crash-looping a worker.
    poisoned: Mutex<BTreeSet<String>>,
    shutdown: AtomicBool,
    next_job: AtomicU64,
    next_seq: AtomicU64,
    /// Service start on the service clock (microseconds) — the uptime
    /// origin.
    started_us: u64,
    /// The service clock every span, deadline, queue-wait, and uptime
    /// measurement reads — the service's only wall-time source (the D104
    /// discipline: no direct `Instant` reads outside `WallClock`).
    clock: Arc<dyn Clock>,
    /// Span recorder streaming to `cfg.trace`; `None` when tracing is
    /// off. Spans are write-only observers — fingerprints and response
    /// bytes are bit-identical either way.
    tracer: Option<Tracer>,
    /// Always-on counters and histograms behind the `metrics` op.
    metrics: MetricsHub,
    /// Workers currently running a claimed ticket (the
    /// `onesched_workers_busy` gauge).
    busy: AtomicU64,
    /// Worker-thread index allocator (trace `worker` attribution).
    next_worker: AtomicU64,
}

/// Poll interval for blocking accept/read loops while checking the
/// shutdown flag.
const POLL: Duration = Duration::from_millis(25);

impl Service {
    /// New idle service (no ledger: no durability, no recovery).
    pub fn new(cfg: ServiceConfig) -> Service {
        let cfg = ServiceConfig {
            workers: cfg.workers.max(1),
            ..cfg
        };
        let clock: Arc<dyn Clock> = Arc::new(WallClock::new());
        let tracer = cfg.trace.as_ref().and_then(|path| {
            match std::fs::File::create(path) {
                Ok(file) => {
                    let t = Tracer::new(Arc::clone(&clock));
                    t.set_sink(Box::new(file));
                    Some(t)
                }
                Err(e) => {
                    // Tracing is an observer: an unopenable sink degrades
                    // observability, never availability.
                    eprintln!(
                        "onesched-svc: cannot open trace sink {} (tracing disabled): {e}",
                        path.display()
                    );
                    None
                }
            }
        });
        Service {
            registry: Mutex::new(Registry::new(cfg.cache_capacity)),
            sim_registry: Mutex::new(Registry::new(cfg.cache_capacity)),
            cfg,
            queue: Mutex::new(PriorityQueue::new()),
            ready: Condvar::new(),
            stats: Mutex::new(ServiceStats::default()),
            ledger: None,
            poisoned: Mutex::new(BTreeSet::new()),
            shutdown: AtomicBool::new(false),
            next_job: AtomicU64::new(0),
            next_seq: AtomicU64::new(0),
            started_us: clock.now_micros(),
            clock,
            tracer,
            metrics: MetricsHub::new(),
            busy: AtomicU64::new(0),
            next_worker: AtomicU64::new(0),
        }
    }

    /// New durable service journaling to the ledger at `path`, recovering
    /// whatever a previous process left there: the torn tail (if any) is
    /// truncated, acknowledged outcomes rehydrate the caches,
    /// unacknowledged jobs re-enter the queue in original priority/FIFO
    /// order, and crash-looping jobs are tombstoned as poison.
    pub fn with_ledger(
        cfg: ServiceConfig,
        path: &Path,
    ) -> Result<(Service, RecoveryReport), LedgerError> {
        let (mut ledger, replay) = Ledger::open(path)?;
        let svc = Service::new(cfg);
        let report = svc.recover(&replay, &mut ledger);
        ledger.sync()?;
        Ok((
            Service {
                ledger: Some(Mutex::new(ledger)),
                ..svc
            },
            report,
        ))
    }

    /// Replay a parsed ledger into this (idle, pre-serve) service.
    fn recover(&self, replay: &Replay, ledger: &mut Ledger) -> RecoveryReport {
        let mut report = RecoveryReport {
            events_replayed: replay.records.len(),
            torn_tail: replay.torn,
            ..RecoveryReport::default()
        };
        // Fold lifecycle events onto their submissions, keyed by seq (ids
        // are client-chosen and may repeat across restarts).
        let mut subs: BTreeMap<u64, PendingSub> = BTreeMap::new();
        let mut next_seq: u64 = 0;
        for rec in &replay.records {
            next_seq = next_seq.max(rec.seq.saturating_add(1));
            match rec.event.as_str() {
                "submitted" => {
                    if let (Some(id), Some(job)) = (rec.id.clone(), rec.job.clone()) {
                        subs.insert(
                            rec.seq,
                            PendingSub {
                                id,
                                hash: rec.key.clone().unwrap_or_default(),
                                priority: rec.priority.unwrap_or(0),
                                job,
                                sim: rec.sim.clone(),
                                starts: 0,
                                resolved: false,
                                outcome: None,
                            },
                        );
                    }
                }
                "started" => {
                    if let Some(s) = subs.get_mut(&rec.seq) {
                        s.starts = s.starts.saturating_add(1);
                    }
                }
                "done" | "failed" => {
                    if let Some(s) = subs.get_mut(&rec.seq) {
                        s.resolved = true;
                        if s.outcome.is_none() {
                            s.outcome.clone_from(&rec.outcome);
                        }
                    }
                }
                // Unknown events: a newer schema's extras, skipped.
                _ => {}
            }
        }
        self.next_seq.store(next_seq, Ordering::Relaxed);

        // BTreeMap iteration is in seq order, so re-queued jobs keep their
        // original FIFO order within each priority class.
        for (seq, sub) in subs {
            let resolved_job = match sub.job.resolve() {
                Ok(j) => j,
                Err(e) => {
                    // Accepted by a previous (incompatible?) build: answer
                    // the ledger, not the long-gone client.
                    let msg = format!("unresolvable after restart: {e}");
                    let _ = ledger.append(&LedgerRecord::failed(seq, &sub.id, &sub.hash, msg));
                    report.skipped += 1;
                    continue;
                }
            };
            let resolved_sim = match &sub.sim {
                Some(s) => match s.resolve() {
                    Ok(r) => Some(r),
                    Err(e) => {
                        let msg = format!("unresolvable after restart: {e}");
                        let _ = ledger.append(&LedgerRecord::failed(seq, &sub.id, &sub.hash, msg));
                        report.skipped += 1;
                        continue;
                    }
                },
                None => None,
            };
            if sub.resolved {
                // Acknowledged: rehydrate the recorded outcome so repeat
                // submissions are cache hits, bit-identical to pre-crash.
                if let Some(out_rec) = &sub.outcome {
                    match &resolved_sim {
                        Some(sim) => {
                            if let Some(o) = out_rec.to_sim() {
                                let key = format!("{}|{}", resolved_job.key, sim.key);
                                lock(&self.sim_registry).insert(key, o);
                                report.results_rehydrated += 1;
                            }
                        }
                        None => {
                            if let Some(o) = out_rec.to_job() {
                                lock(&self.registry).insert(resolved_job.key.clone(), o);
                                report.results_rehydrated += 1;
                            }
                        }
                    }
                }
                continue;
            }
            let work = match resolved_sim {
                Some(sim) => Work::Sim(resolved_job, sim),
                None => Work::Job(resolved_job),
            };
            let hash = work.hash();
            if sub.starts > self.cfg.max_retries {
                // This job took a previous daemon down on every attempt:
                // tombstone it instead of crash-looping forever.
                lock(&self.poisoned).insert(hash.clone());
                let msg = format!(
                    "poison: started {} times without completing (max-retries {})",
                    sub.starts, self.cfg.max_retries
                );
                let _ = ledger.append(&LedgerRecord::failed(seq, &sub.id, &hash, msg));
                report.poisoned += 1;
                continue;
            }
            // Unacknowledged: re-queue for execution. The original client
            // is gone, so results stream to a sink — the caches and the
            // ledger keep the outcome for when the client resubmits.
            let accepted_us = self.clock.now_micros();
            let ticket = Ticket {
                seq,
                id: sub.id,
                priority: sub.priority,
                attempts: sub.starts,
                deadline: self
                    .cfg
                    .timeout
                    .map(|t| accepted_us.saturating_add(duration_us(t))),
                accepted_us,
                key: hash,
                work,
                out: sink_writer(),
            };
            let effective = sub.priority.saturating_sub(i64::from(sub.starts));
            lock(&self.queue).push(effective, ticket);
            report.jobs_requeued += 1;
        }
        lock(&self.stats).jobs_recovered =
            (report.jobs_requeued + report.results_rehydrated) as u64;
        report
    }

    /// Append one record to the ledger, if the service has one. Append
    /// failures degrade durability, not availability: the daemon logs and
    /// keeps serving.
    fn ledger_append(&self, rec: &LedgerRecord) {
        if let Some(l) = &self.ledger {
            if let Err(e) = lock(l).append(rec) {
                eprintln!("onesched-svc: ledger append failed (durability degraded): {e}");
            }
        }
    }

    /// The queue depth at which admission control starts shedding.
    fn high_water(&self) -> usize {
        self.cfg
            .high_water
            .unwrap_or_else(|| (self.cfg.queue_cap / 4).saturating_mul(3))
            .clamp(1, self.cfg.queue_cap)
    }

    /// Backoff hint for overload rejections: roughly how long the queue
    /// needs to drain `depth` jobs across the worker pool at the recent
    /// mean construction latency.
    fn retry_after_ms(&self, depth: usize) -> f64 {
        let per_job_ms = lock(&self.stats).mean_recent_ms(50.0);
        (depth.max(1) as f64 / self.cfg.workers.max(1) as f64) * per_job_ms
    }

    /// Whether shutdown has been requested.
    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// Request shutdown: intake stops, every still-queued job is answered
    /// with a `shutting-down` protocol error (and tombstoned in the
    /// ledger), in-flight jobs finish, workers exit.
    pub fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        // Drain and notify while holding the queue mutex: a worker is
        // either before its lock acquisition (it will see the flag and the
        // empty queue) or parked in `ready.wait` (it will get this
        // notification) — never in between, which would lose the wakeup
        // and hang the scoped join forever.
        let drained: Vec<Ticket> = {
            let mut q = lock(&self.queue);
            let mut v = Vec::new();
            while let Some(t) = q.pop() {
                v.push(t);
            }
            self.ready.notify_all();
            v
        };
        for t in drained {
            // `done` tombstone: the job is concluded (shed), not
            // unacknowledged — a restart must not replay it.
            self.ledger_append(&LedgerRecord::done(
                t.seq,
                &t.id,
                &t.key,
                None,
                Some("shutting-down".into()),
            ));
            lock(&self.stats).jobs_shed += 1;
            self.respond_error_kind(
                &t.out,
                Some(t.id),
                "shutting down: job accepted but not run".into(),
                Some("shutting-down"),
                None,
            );
        }
        if let Some(l) = &self.ledger {
            let _ = lock(l).sync();
        }
        if let Some(t) = &self.tracer {
            t.flush();
        }
    }

    /// Block until the queue is empty (in-flight jobs may still be
    /// running) or shutdown is requested. Batch sessions call this before
    /// [`Service::begin_shutdown`] so every accepted job is *answered*
    /// rather than shed.
    pub fn drain_queue(&self) {
        loop {
            if self.is_shutdown() || lock(&self.queue).is_empty() {
                return;
            }
            std::thread::sleep(POLL);
        }
    }

    /// Serve newline-delimited requests from stdin, streaming responses to
    /// stdout, until EOF or a `shutdown` request; at EOF queued jobs are
    /// drained (run, not shed) before returning. One process = one batch
    /// session, which is what the CI smoke test and shell pipelines use.
    pub fn serve_stdio(&self) -> io::Result<()> {
        let out: SharedWriter = Arc::new(Mutex::new(Box::new(io::stdout())));
        let stdin = io::stdin().lock();
        self.serve_batch(stdin, &out, "stdio");
        Ok(())
    }

    /// One complete batch session over any reader/writer pair: announce
    /// `ready` (with `label` as the address), spawn the worker pool,
    /// accept requests until EOF or shutdown, drain the queue, shut down.
    /// `serve_stdio` is this over stdin/stdout; integration tests drive it
    /// with in-memory buffers.
    pub fn serve_batch<R: BufRead>(&self, reader: R, out: &SharedWriter, label: &str) {
        write_line(out, &to_line(&self.ready_response(label)));
        std::thread::scope(|scope| {
            for _ in 0..self.cfg.workers {
                scope.spawn(|| self.worker());
            }
            self.serve_reader(reader, out);
            self.drain_queue();
            self.begin_shutdown();
        });
    }

    /// Bind `addr` and serve concurrent TCP connections until a `shutdown`
    /// request, announcing the bound address as a `ready` line on
    /// `announce` (stdout in the binary; `--tcp 127.0.0.1:0` binds an
    /// ephemeral port, so clients need the announcement).
    pub fn serve_tcp(&self, addr: &str, announce: &SharedWriter) -> io::Result<()> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let bound = listener.local_addr()?;
        write_line(announce, &to_line(&self.ready_response(&bound.to_string())));
        std::thread::scope(|scope| -> io::Result<()> {
            for _ in 0..self.cfg.workers {
                scope.spawn(|| self.worker());
            }
            loop {
                if self.is_shutdown() {
                    break;
                }
                match listener.accept() {
                    Ok((stream, _)) => {
                        scope.spawn(move || {
                            if let Err(e) = self.handle_conn(stream) {
                                eprintln!("onesched-svc: connection error: {e}");
                            }
                        });
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(POLL);
                    }
                    Err(e) => {
                        self.begin_shutdown();
                        return Err(e);
                    }
                }
            }
            self.begin_shutdown();
            Ok(())
        })
    }

    /// Feed request lines from any reader, writing each response to `out`.
    /// Returns at EOF or shutdown (queued jobs may still be in flight —
    /// callers own the worker lifecycle, as [`Service::serve_stdio`] does).
    pub fn serve_reader<R: BufRead>(&self, reader: R, out: &SharedWriter) {
        for line in reader.lines() {
            let Ok(line) = line else { break };
            if line.trim().is_empty() {
                continue;
            }
            self.handle_line(&line, out);
            if self.is_shutdown() {
                break;
            }
        }
    }

    /// The daemon's `ready` announcement.
    fn ready_response(&self, addr: &str) -> ReadyResponse {
        ReadyResponse {
            op: "ready".into(),
            protocol: PROTOCOL_VERSION.into(),
            addr: addr.into(),
            workers: self.cfg.workers,
        }
    }

    /// One TCP connection: read request lines (polling so shutdown can
    /// interrupt), answer on the same stream. A connection that drops
    /// mid-line simply never completes that line — the partial request is
    /// discarded, accepted jobs are unaffected.
    fn handle_conn(&self, stream: TcpStream) -> io::Result<()> {
        stream.set_read_timeout(Some(POLL))?;
        let out: SharedWriter = Arc::new(Mutex::new(Box::new(stream.try_clone()?)));
        let mut stream = stream;
        let mut buf: Vec<u8> = Vec::new();
        let mut chunk = [0u8; 4096];
        loop {
            if self.is_shutdown() {
                return Ok(());
            }
            match io::Read::read(&mut stream, &mut chunk) {
                Ok(0) => return Ok(()), // client closed
                Ok(n) => {
                    buf.extend_from_slice(chunk.get(..n).unwrap_or_default());
                    // process every complete line in the buffer
                    while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
                        let mut line: Vec<u8> = buf.drain(..=pos).collect();
                        line.pop(); // the newline itself
                        let line = String::from_utf8_lossy(&line);
                        if !line.trim().is_empty() {
                            self.handle_line(line.trim_end_matches('\r'), &out);
                        }
                    }
                }
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut => {}
                Err(e) => return Err(e),
            }
        }
    }

    /// Parse and dispatch one request line; every line gets exactly one
    /// response line (possibly later, for submissions).
    pub fn handle_line(&self, line: &str, out: &SharedWriter) {
        let req: Request = match serde_json::from_str(line) {
            Ok(r) => r,
            Err(e) => {
                self.respond_error(out, None, format!("unparseable request: {e}"));
                return;
            }
        };
        match req.op.as_str() {
            "submit" | "simulate" => self.handle_submission(req, out),
            "stats" => {
                let snap = lock(&self.stats).snapshot(self.gauges(), self.uptime());
                write_line(out, &to_line(&snap));
            }
            "metrics" => {
                let resp = MetricsResponse {
                    op: "metrics".into(),
                    content_type: "text/plain; version=0.0.4".into(),
                    text: self.metrics_text(),
                };
                write_line(out, &to_line(&resp));
            }
            "shutdown" => {
                let ack = AckResponse {
                    op: "ok".into(),
                    message: "shutting down; queued jobs answered shutting-down".into(),
                };
                write_line(out, &to_line(&ack));
                self.begin_shutdown();
            }
            other => {
                self.respond_error(out, req.id, format!("unknown op {other:?}"));
            }
        }
    }

    /// Intake for `submit`/`simulate`: resolve, check poison, admission-
    /// control the queue (hard cap, then high-water shedding), journal the
    /// acceptance, enqueue.
    fn handle_submission(&self, req: Request, out: &SharedWriter) {
        let op = req.op.as_str();
        let Some(spec) = req.job else {
            self.respond_error(out, req.id, format!("{op} requires a `job`"));
            return;
        };
        let job = match spec.resolve() {
            Ok(j) => j,
            Err(e) => {
                self.respond_error_kind(out, req.id, e.message, e.kind, None);
                return;
            }
        };
        let work = if op == "simulate" {
            match req.sim.unwrap_or_default().resolve() {
                Ok(sim) => Work::Sim(job, sim),
                Err(e) => {
                    self.respond_error(out, req.id, e);
                    return;
                }
            }
        } else {
            Work::Job(job)
        };
        let id = req
            .id
            .unwrap_or_else(|| format!("job-{}", self.next_job.fetch_add(1, Ordering::Relaxed)));
        let hash = work.hash();
        if lock(&self.poisoned).contains(&hash) {
            self.respond_error_kind(
                out,
                Some(id),
                "job is poisoned: repeated attempts crashed without completing".into(),
                Some("poisoned"),
                None,
            );
            return;
        }
        let priority = req.priority.unwrap_or(0);
        let accepted_us = self.clock.now_micros();
        let ticket = Ticket {
            seq: self.next_seq.fetch_add(1, Ordering::Relaxed),
            id,
            priority,
            attempts: 0,
            deadline: self
                .cfg
                .timeout
                .map(|t| accepted_us.saturating_add(duration_us(t))),
            accepted_us,
            key: hash,
            work,
            out: Arc::clone(out),
        };
        // Admission control under the queue lock, so the depth checks,
        // the write-ahead journal entry, and the push are atomic. Stages:
        // reject at the hard cap; past the high-water mark admit only work
        // that outranks the queue's bottom (shedding that bottom entry).
        let shed: Option<Ticket> = {
            let mut q = lock(&self.queue);
            if self.is_shutdown() {
                drop(q);
                self.respond_error_kind(
                    out,
                    Some(ticket.id),
                    "shutting down: no longer accepting jobs".into(),
                    Some("shutting-down"),
                    None,
                );
                return;
            }
            let depth = q.len();
            if depth >= self.cfg.queue_cap {
                drop(q);
                let hint = self.retry_after_ms(depth);
                self.respond_error_kind(
                    out,
                    Some(ticket.id),
                    format!(
                        "queue full ({depth} jobs queued, cap {})",
                        self.cfg.queue_cap
                    ),
                    Some("queue-full"),
                    Some(hint),
                );
                return;
            }
            let mut shed = None;
            if depth >= self.high_water() {
                let floor = q.min_priority().unwrap_or(i64::MIN);
                if ticket.priority <= floor {
                    // The newcomer would be the shedding victim anyway
                    // (lowest priority, newest): reject it directly.
                    drop(q);
                    let hint = self.retry_after_ms(depth);
                    self.respond_error_kind(
                        out,
                        Some(ticket.id),
                        format!(
                            "overloaded ({depth} jobs queued, high-water {}): \
                             priority {} does not outrank queued work",
                            self.high_water(),
                            ticket.priority
                        ),
                        Some("overloaded"),
                        Some(hint),
                    );
                    return;
                }
                shed = q.shed_lowest().map(|(_, t)| t);
            }
            // Write-ahead: journal the acceptance before it is queued, so
            // a crash between the two replays the job instead of losing
            // it. (Journaling under the queue lock keeps the ledger's
            // submitted order consistent with seq order.)
            let (job_spec, sim_spec) = match &ticket.work {
                Work::Job(j) => (j.spec.clone(), None),
                Work::Sim(j, s) => (j.spec.clone(), Some(s.spec.clone())),
            };
            self.ledger_append(&LedgerRecord::submitted(
                ticket.seq,
                &ticket.id,
                &ticket.key,
                ticket.priority,
                job_spec,
                sim_spec,
            ));
            q.push(ticket.priority, ticket);
            shed
        };
        if let Some(victim) = shed {
            let depth = lock(&self.queue).len();
            let hint = self.retry_after_ms(depth);
            self.ledger_append(&LedgerRecord::done(
                victim.seq,
                &victim.id,
                &victim.key,
                None,
                Some("overloaded: shed by higher-priority work".into()),
            ));
            lock(&self.stats).jobs_shed += 1;
            self.respond_error_kind(
                &victim.out,
                Some(victim.id),
                "overloaded: shed by higher-priority work".into(),
                Some("overloaded"),
                Some(hint),
            );
        }
        self.ready.notify_one();
    }

    /// Sample the point-in-time gauges shared by `stats` and `metrics`.
    fn gauges(&self) -> StatsGauges {
        let queue_depth = lock(&self.queue).len();
        let (cache_size, evictions) = {
            let r = lock(&self.registry);
            (r.len(), r.evictions)
        };
        let (sim_cache_size, sim_evictions) = {
            let r = lock(&self.sim_registry);
            (r.len(), r.evictions)
        };
        let (ledger_bytes, uptime_events) = match &self.ledger {
            Some(l) => {
                let l = lock(l);
                (l.bytes(), l.appended())
            }
            None => (0, 0),
        };
        StatsGauges {
            queue_depth,
            cache_size,
            sim_cache_size,
            cache_evictions: evictions + sim_evictions,
            ledger_bytes,
            uptime_events,
            trace_events_dropped: self.tracer.as_ref().map(Tracer::dropped).unwrap_or(0),
        }
    }

    /// Time since service construction, on the service clock.
    fn uptime(&self) -> Duration {
        Duration::from_micros(self.clock.now_micros().saturating_sub(self.started_us))
    }

    /// The Prometheus text exposition behind the `metrics` op: the hub's
    /// own counters/histograms, plus counters derived from the same
    /// [`ServiceStats`] that answers `stats` (so the two views reconcile
    /// by construction), plus scrape-time gauges.
    fn metrics_text(&self) -> String {
        let mut snap = self.metrics.snapshot();
        let gauges = self.gauges();
        let misses = lock(&self.registry).executions + lock(&self.sim_registry).executions;
        {
            let s = lock(&self.stats);
            let derived: [(&str, u64); 10] = [
                ("onesched_jobs_total{outcome=\"done\"}", s.jobs_done),
                ("onesched_jobs_total{outcome=\"error\"}", s.errors),
                ("onesched_jobs_total{outcome=\"retried\"}", s.jobs_retried),
                ("onesched_jobs_total{outcome=\"shed\"}", s.jobs_shed),
                ("onesched_jobs_total{outcome=\"timeout\"}", s.jobs_timed_out),
                ("onesched_sims_total", s.sims_done),
                ("onesched_cache_hits_total", s.cache_hits),
                ("onesched_cache_misses_total", misses),
                ("onesched_cache_evictions_total", gauges.cache_evictions),
                ("onesched_jobs_recovered_total", s.jobs_recovered),
            ];
            for (name, v) in derived {
                snap.counters.insert(name.to_string(), v);
            }
        }
        snap.counters
            .insert("onesched_ledger_appends_total".into(), gauges.uptime_events);
        snap.counters.insert(
            "onesched_trace_dropped_total".into(),
            gauges.trace_events_dropped,
        );
        let gauge_samples = [
            Gauge::new("onesched_queue_depth", gauges.queue_depth as f64),
            Gauge::new(
                "onesched_workers_busy",
                self.busy.load(Ordering::Relaxed) as f64,
            ),
            Gauge::new("onesched_cache_size", gauges.cache_size as f64),
            Gauge::new("onesched_sim_cache_size", gauges.sim_cache_size as f64),
            Gauge::new("onesched_ledger_bytes", gauges.ledger_bytes as f64),
            Gauge::new("onesched_uptime_seconds", self.uptime().as_secs_f64()),
        ];
        prometheus_text(&snap, &gauge_samples)
    }

    /// Fold a finished construction into the hub: total and per-phase
    /// histograms plus the placement-scan disposition counters.
    fn note_construct(&self, construct: Duration, phase_us: &[u64; 4], scan: &ScanStats) {
        self.metrics
            .observe_ms("onesched_construct_ms", construct.as_secs_f64() * 1e3);
        for (phase, &us) in PHASES.iter().zip(phase_us) {
            self.metrics.observe_ms(
                &format!("onesched_construct_phase_ms{{phase=\"{}\"}}", phase.name()),
                us as f64 / 1e3,
            );
        }
        let dispositions: [(&str, u64); 5] = [
            ("considered", scan.candidates),
            ("evaluated", scan.evaluated),
            ("pruned_bound", scan.pruned_bound),
            ("pruned_contention", scan.pruned_contention),
            ("aborted", scan.aborted),
        ];
        for (label, n) in dispositions {
            if n > 0 {
                self.metrics.incr(
                    &format!("onesched_placement_candidates_total{{disposition=\"{label}\"}}"),
                    n,
                );
            }
        }
    }

    fn respond_error(&self, out: &SharedWriter, id: Option<String>, message: String) {
        self.respond_error_kind(out, id, message, None, None);
    }

    fn respond_error_kind(
        &self,
        out: &SharedWriter,
        id: Option<String>,
        message: String,
        kind: Option<&str>,
        retry_after_ms: Option<f64>,
    ) {
        lock(&self.stats).errors += 1;
        let resp = ErrorResponse {
            op: "error".into(),
            id,
            message,
            kind: kind.map(str::to_string),
            retry_after_ms,
        };
        write_line(out, &to_line(&resp));
    }

    /// Worker loop: claim the highest-priority job, serve it from the cache
    /// or run it, stream the result. Exits once shutdown is requested *and*
    /// the queue is drained.
    fn worker(&self) {
        let worker = self.next_worker.fetch_add(1, Ordering::Relaxed);
        loop {
            let ticket = {
                let mut q = lock(&self.queue);
                loop {
                    if let Some(t) = q.pop() {
                        break t;
                    }
                    if self.is_shutdown() {
                        return;
                    }
                    q = match self.ready.wait(q) {
                        Ok(guard) => guard,
                        Err(poisoned) => poisoned.into_inner(),
                    };
                }
            };
            self.busy.fetch_add(1, Ordering::Relaxed);
            self.run_ticket(ticket, worker);
            self.busy.fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// Run one claimed ticket: deadline gate, `started` journal entry,
    /// then the actual work behind a panic barrier — a panicking job is
    /// re-queued at reduced priority up to `max_retries`, then poisoned.
    fn run_ticket(&self, ticket: Ticket, worker: u64) {
        let dequeued_us = self.clock.now_micros();
        self.metrics.observe_ms(
            "onesched_queue_wait_ms",
            dequeued_us.saturating_sub(ticket.accepted_us) as f64 / 1e3,
        );
        if ticket.deadline.is_some_and(|d| dequeued_us > d) {
            self.answer_timeout(&ticket);
            self.trace_abort(&ticket, worker, dequeued_us, true);
            return;
        }
        self.ledger_append(&LedgerRecord::started(ticket.seq, &ticket.id, &ticket.key));
        // The panic barrier: schedulers are pure and total, but "never
        // takes the worker pool down" must not depend on that. The shared
        // state (locks, counters, caches) is valid at every instruction
        // boundary and `lock` recovers poisoned mutexes, so unwinding
        // cannot leave it inconsistent.
        let ran = catch_unwind(AssertUnwindSafe(|| {
            self.execute(&ticket, worker, dequeued_us)
        }));
        if ran.is_err() {
            self.handle_panic(ticket, worker, dequeued_us);
        }
    }

    /// Retry-or-poison after a panic escaped a job.
    fn handle_panic(&self, mut ticket: Ticket, worker: u64, dequeued_us: u64) {
        if ticket.attempts < self.cfg.max_retries && !self.is_shutdown() {
            // A non-terminal attempt span: the job itself is still open.
            self.trace_abort(&ticket, worker, dequeued_us, false);
            ticket.attempts += 1;
            lock(&self.stats).jobs_retried += 1;
            // Deterministic backoff by *position*, not wall-clock: each
            // attempt re-queues one priority level lower, so the retry
            // runs after the work that was queued alongside it, in an
            // order that depends only on the queue contents.
            let backoff = ticket.priority.saturating_sub(i64::from(ticket.attempts));
            {
                let mut q = lock(&self.queue);
                q.push(backoff, ticket);
            }
            self.ready.notify_one();
            return;
        }
        let attempts = ticket.attempts + 1;
        lock(&self.poisoned).insert(ticket.key.clone());
        self.ledger_append(&LedgerRecord::failed(
            ticket.seq,
            &ticket.id,
            &ticket.key,
            format!(
                "poison: {attempts} attempts panicked (max-retries {})",
                self.cfg.max_retries
            ),
        ));
        // The poison answer may be going to the very writer whose panics
        // exhausted the retries — guard it too, or the failure path for a
        // broken client takes the worker down with it.
        let _ = catch_unwind(AssertUnwindSafe(|| {
            self.respond_error_kind(
                &ticket.out,
                Some(ticket.id.clone()),
                format!("job failed: {attempts} attempts panicked; poisoned"),
                Some("poisoned"),
                None,
            );
        }));
        self.trace_abort(&ticket, worker, dequeued_us, true);
    }

    /// Answer a job whose wall-clock deadline passed.
    fn answer_timeout(&self, ticket: &Ticket) {
        lock(&self.stats).jobs_timed_out += 1;
        self.ledger_append(&LedgerRecord::failed(
            ticket.seq,
            &ticket.id,
            &ticket.key,
            "timeout".into(),
        ));
        let budget_ms = self
            .cfg
            .timeout
            .map(|t| t.as_secs_f64() * 1e3)
            .unwrap_or(0.0);
        self.respond_error_kind(
            &ticket.out,
            Some(ticket.id.clone()),
            format!("timeout: job exceeded its {budget_ms} ms deadline"),
            Some("timeout"),
            None,
        );
    }

    fn execute(&self, ticket: &Ticket, worker: u64, dequeued_us: u64) {
        match &ticket.work {
            Work::Job(job) => self.execute_schedule(ticket, job, worker, dequeued_us),
            Work::Sim(job, sim) => self.execute_sim(ticket, job, sim, worker, dequeued_us),
        }
    }

    fn execute_schedule(&self, ticket: &Ticket, job: &ResolvedJob, worker: u64, dequeued_us: u64) {
        let cached = lock(&self.registry).get(&job.key).cloned();
        let probe = ConstructProbe::new(self.clock.as_ref());
        let (outcome, cache_hit, construct_trace, portfolio_trace) = match cached {
            Some(outcome) => (outcome, true, None, None),
            // The portfolio meta-kind gets its own fan-out path: each
            // member is cached under its own canonical key, and the trace
            // carries per-member spans instead of per-phase ones.
            None if job.scheduler_spec().kind == "portfolio" => {
                match self.construct_portfolio(job) {
                    Ok((outcome, detail)) => (outcome, false, None, Some(detail)),
                    Err(msg) => {
                        self.ledger_append(&LedgerRecord::failed(
                            ticket.seq,
                            &ticket.id,
                            &ticket.key,
                            msg.clone(),
                        ));
                        self.respond_error(&ticket.out, Some(ticket.id.clone()), msg);
                        self.trace_abort(ticket, worker, dequeued_us, true);
                        return;
                    }
                }
            }
            None => {
                // run WITHOUT holding any lock: construction is the slow part
                let outcome = run_job_probed(job, &probe);
                let detail = self.finish_construct(&outcome.construct, &probe);
                lock(&self.registry).insert(job.key.clone(), outcome.clone());
                (outcome, false, Some(detail), None)
            }
        };
        // Deadline re-check between construction and the answer: the
        // outcome stays cached (the work is done and deterministic), but
        // the client asked for a bounded wait.
        if ticket.deadline.is_some_and(|d| self.clock.now_micros() > d) {
            self.answer_timeout(ticket);
            self.trace_abort(ticket, worker, dequeued_us, true);
            return;
        }
        {
            let mut stats = lock(&self.stats);
            stats.jobs_done += 1;
            if cache_hit {
                stats.cache_hits += 1;
            } else {
                stats.record_latency(&outcome.scheduler, outcome.construct);
            }
        }
        self.ledger_append(&LedgerRecord::done(
            ticket.seq,
            &ticket.id,
            &ticket.key,
            Some(LedgerOutcome::from_job(&outcome)),
            None,
        ));
        let resp = ResultResponse {
            op: "result".into(),
            id: ticket.id.clone(),
            scheduler: outcome.scheduler,
            model: job.model().name().into(),
            tasks: outcome.tasks,
            makespan: outcome.makespan,
            speedup: outcome.speedup,
            effective_comms: outcome.effective_comms,
            fingerprint: format!("{:016x}", outcome.fingerprint),
            construct_ms: outcome.construct.as_secs_f64() * 1e3,
            cache_hit,
            violations: outcome.violations,
        };
        let respond_us = self.clock.now_micros();
        write_line(&ticket.out, &to_line(&resp));
        self.trace_finish(FinishTrace {
            ticket,
            worker,
            dequeued_us,
            respond_us,
            construct: construct_trace,
            portfolio: portfolio_trace,
            exec: None,
            cache_hit,
        });
    }

    /// The portfolio fan-out: resolve each member as its own job, reuse
    /// any member outcome the schedule cache already holds, construct the
    /// rest in parallel, cache every constructed member under its own
    /// canonical key, and pick the winner with the registry's shared
    /// `(makespan, canonical label)` tie-break. The portfolio's own
    /// outcome — the winner's schedule summary under the portfolio job
    /// key, with `construct` covering the whole race — is cached too, so
    /// a repeat of the portfolio job is a plain cache hit.
    fn construct_portfolio(
        &self,
        job: &ResolvedJob,
    ) -> Result<(JobOutcome, PortfolioTrace), String> {
        let member_specs = job.scheduler_spec().members.clone().unwrap_or_default();
        let t0 = self.clock.now_micros();
        let mut members = Vec::with_capacity(member_specs.len());
        for m in &member_specs {
            // Cannot fail: intake normalized every member against the
            // same catalog and platform. Surfaced as an error response
            // rather than a worker panic if that invariant ever breaks.
            let mj = job.with_scheduler(m).map_err(|e| {
                format!(
                    "portfolio member {:?} failed to re-resolve: {}",
                    m.canonical(),
                    e.message
                )
            })?;
            members.push((m.canonical(), mj, None));
        }
        {
            let reg = lock(&self.registry);
            for (_, mj, cached) in &mut members {
                *cached = reg.get(&mj.key).cloned();
            }
        }
        // Fan out WITHOUT holding any lock: construction is the slow part.
        let members = run_portfolio_members(members);
        {
            let mut reg = lock(&self.registry);
            for m in &members {
                if !m.cached {
                    reg.insert(m.key.clone(), m.outcome.clone());
                }
            }
        }
        let candidates: Vec<(&str, f64)> = members
            .iter()
            .map(|m| (m.label.as_str(), m.outcome.makespan))
            .collect();
        let winner = onesched_heuristics::registry::select_best(&candidates)
            .ok_or_else(|| "portfolio has no members".to_string())?;
        let won = members
            .get(winner)
            .ok_or_else(|| "portfolio winner out of range".to_string())?;
        let end_us = self.clock.now_micros();
        let construct = Duration::from_micros(end_us.saturating_sub(t0));
        let outcome = JobOutcome {
            scheduler: format!("portfolio({})", members.len()),
            tasks: won.outcome.tasks,
            makespan: won.outcome.makespan,
            speedup: won.outcome.speedup,
            effective_comms: won.outcome.effective_comms,
            fingerprint: won.outcome.fingerprint,
            construct,
            violations: won.outcome.violations,
        };
        lock(&self.registry).insert(job.key.clone(), outcome.clone());
        {
            // Member latencies land under each member's display name (the
            // same key a direct submit of that member uses); the caller
            // records the portfolio's own total under `portfolio(N)`.
            let mut stats = lock(&self.stats);
            for m in &members {
                if !m.cached {
                    stats.record_latency(&m.outcome.scheduler, m.outcome.construct);
                }
            }
            stats.record_portfolio_win(&won.label);
        }
        self.metrics
            .observe_ms("onesched_construct_ms", construct.as_secs_f64() * 1e3);
        self.metrics.incr(
            &format!("onesched_portfolio_wins_total{{member=\"{}\"}}", won.label),
            1,
        );
        let trace = PortfolioTrace {
            total_us: duration_us(construct),
            end_us,
            members: members
                .iter()
                .enumerate()
                .map(|(i, m)| MemberTrace {
                    label: m.label.clone(),
                    construct_us: duration_us(m.outcome.construct),
                    makespan: m.outcome.makespan,
                    won: i == winner,
                    cached: m.cached,
                })
                .collect(),
        };
        Ok((outcome, trace))
    }

    fn execute_sim(
        &self,
        ticket: &Ticket,
        job: &ResolvedJob,
        sim: &ResolvedSim,
        worker: u64,
        dequeued_us: u64,
    ) {
        // The sim cache key is the job key plus the resolved sim spec:
        // the same schedule under a different seed or policy is a
        // different deterministic experiment.
        let key = format!("{}|{}", job.key, sim.key);
        let cached = lock(&self.sim_registry).get(&key).cloned();
        let probe = ConstructProbe::new(self.clock.as_ref());
        let (outcome, cache_hit, construct_trace) = match cached {
            Some(outcome) => (outcome, true, None),
            None => {
                match run_sim_job_probed(job, sim, ticket.deadline, self.clock.as_ref(), &probe) {
                    Ok(outcome) => {
                        let detail = self.finish_construct(&outcome.job.construct, &probe);
                        self.metrics
                            .observe_ms("onesched_exec_ms", outcome.exec.as_secs_f64() * 1e3);
                        lock(&self.sim_registry).insert(key, outcome.clone());
                        (outcome, false, Some(detail))
                    }
                    // The deadline passed between construction and execution:
                    // keep the constructed half (a future plain submit of the
                    // same job is a cache hit), answer the timeout.
                    Err(SimRunError::DeadlineExceeded(constructed)) => {
                        lock(&self.registry).insert(job.key.clone(), *constructed);
                        self.answer_timeout(ticket);
                        self.trace_abort(ticket, worker, dequeued_us, true);
                        return;
                    }
                    // The engine refused the schedule: answer with a protocol
                    // error instead of panicking the worker. No outcome is
                    // cached (the job stays retryable after a fix).
                    Err(SimRunError::Exec(e)) => {
                        let msg = format!("execution failed: {e}");
                        self.ledger_append(&LedgerRecord::failed(
                            ticket.seq,
                            &ticket.id,
                            &ticket.key,
                            msg.clone(),
                        ));
                        self.respond_error(&ticket.out, Some(ticket.id.clone()), msg);
                        self.trace_abort(ticket, worker, dequeued_us, true);
                        return;
                    }
                }
            }
        };
        if ticket.deadline.is_some_and(|d| self.clock.now_micros() > d) {
            self.answer_timeout(ticket);
            self.trace_abort(ticket, worker, dequeued_us, true);
            return;
        }
        {
            let mut stats = lock(&self.stats);
            stats.jobs_done += 1;
            stats.sims_done += 1;
            if cache_hit {
                stats.cache_hits += 1;
            } else {
                stats.record_latency(&outcome.job.scheduler, outcome.job.construct);
            }
        }
        self.ledger_append(&LedgerRecord::done(
            ticket.seq,
            &ticket.id,
            &ticket.key,
            Some(LedgerOutcome::from_sim(&outcome)),
            None,
        ));
        let resp = SimResultResponse {
            op: "sim-result".into(),
            id: ticket.id.clone(),
            scheduler: outcome.job.scheduler,
            model: job.model().name().into(),
            policy: outcome.policy,
            seed: outcome.seed,
            tasks: outcome.job.tasks,
            static_makespan: outcome.job.makespan,
            executed_makespan: outcome.executed_makespan,
            degradation: outcome.degradation,
            fingerprint: format!("{:016x}", outcome.job.fingerprint),
            trace_fingerprint: format!("{:016x}", outcome.trace_fingerprint),
            construct_ms: outcome.job.construct.as_secs_f64() * 1e3,
            exec_ms: outcome.exec.as_secs_f64() * 1e3,
            cache_hit,
            violations: outcome.job.violations,
        };
        let respond_us = self.clock.now_micros();
        write_line(&ticket.out, &to_line(&resp));
        let exec_us = duration_us(outcome.exec);
        self.trace_finish(FinishTrace {
            ticket,
            worker,
            dequeued_us,
            respond_us,
            construct: construct_trace,
            portfolio: None,
            exec: (!cache_hit).then_some(ExecTrace {
                exec_us,
                end_us: respond_us,
                events: outcome.events_processed,
            }),
            cache_hit,
        });
    }

    /// Capture the construct-span detail right after a cache-miss
    /// construction finishes, and fold its timings into the hub.
    fn finish_construct(&self, construct: &Duration, probe: &ConstructProbe<'_>) -> ConstructTrace {
        let phase_us = PHASES.map(|p| probe.phase_us(p));
        let phase_allocs = PHASES.map(|p| probe.phase_allocs(p));
        let scan = probe.scan();
        self.note_construct(*construct, &phase_us, &scan);
        ConstructTrace {
            construct_us: duration_us(*construct),
            end_us: self.clock.now_micros(),
            phase_us,
            phase_allocs,
            scan,
        }
    }

    /// Emit the full span tree of a successfully answered attempt:
    /// `job` → `queue.wait` / `job.attempt` → `construct` (with
    /// synthesized phase children) / `execute` / `respond`. Flushes the
    /// sink so a SIGKILL right after the response loses no spans for
    /// answered jobs.
    fn trace_finish(&self, f: FinishTrace<'_>) {
        let Some(tracer) = &self.tracer else {
            return;
        };
        let t = f.ticket;
        let attempt = u64::from(t.attempts) + 1;
        let end_us = tracer.now();
        let scope =
            |ev: TraceEvent| -> TraceEvent { ev.job(t.seq, &t.id, attempt).worker(f.worker) };
        tracer.record(
            scope(TraceEvent::span(
                "queue.wait",
                t.accepted_us,
                f.dequeued_us.saturating_sub(t.accepted_us),
            ))
            .parent("job"),
        );
        if let Some(c) = &f.construct {
            let start = c.end_us.saturating_sub(c.construct_us);
            tracer.record(
                scope(TraceEvent::span("construct", start, c.construct_us)).parent("job.attempt"),
            );
            // Phase children are synthesized contiguously from the
            // probe's accumulated totals: offsets within the construct
            // span, not absolute re-measurements.
            let mut offset = start;
            for ((phase, &us), alloc) in PHASES.iter().zip(&c.phase_us).zip(c.phase_allocs) {
                let mut ev = scope(TraceEvent::span(
                    &format!("construct.{}", phase.name()),
                    offset,
                    us,
                ))
                .parent("construct")
                .field("allocs", alloc.allocs as f64)
                .field("alloc_bytes", alloc.bytes as f64);
                if phase.name() == "scan" {
                    ev = ev
                        .field("candidates", c.scan.candidates as f64)
                        .field("evaluated", c.scan.evaluated as f64)
                        .field("pruned_bound", c.scan.pruned_bound as f64)
                        .field("pruned_contention", c.scan.pruned_contention as f64)
                        .field("aborted", c.scan.aborted as f64);
                }
                tracer.record(ev);
                offset = offset.saturating_add(us);
            }
        }
        if let Some(p) = &f.portfolio {
            // The portfolio race: one parent span for the whole fan-out,
            // one child lane per member. Members ran concurrently, so
            // children share the parent's start anchor instead of being
            // laid out contiguously like the phase children above.
            let start = p.end_us.saturating_sub(p.total_us);
            tracer.record(
                scope(TraceEvent::span("construct.portfolio", start, p.total_us))
                    .parent("job.attempt")
                    .field("members", p.members.len() as f64),
            );
            for m in &p.members {
                tracer.record(
                    scope(TraceEvent::span(
                        &format!("construct.portfolio.{}", m.label),
                        start,
                        m.construct_us,
                    ))
                    .parent("construct.portfolio")
                    .field("makespan", m.makespan)
                    .field("win", f64::from(u8::from(m.won)))
                    .field("cached", f64::from(u8::from(m.cached))),
                );
            }
        }
        if let Some(e) = &f.exec {
            tracer.record(
                scope(TraceEvent::span(
                    "execute",
                    e.end_us.saturating_sub(e.exec_us),
                    e.exec_us,
                ))
                .parent("job.attempt")
                .field("events", e.events as f64),
            );
        }
        tracer.record(
            scope(TraceEvent::span(
                "respond",
                f.respond_us,
                end_us.saturating_sub(f.respond_us),
            ))
            .parent("job.attempt"),
        );
        tracer.record(
            scope(TraceEvent::span(
                "job.attempt",
                f.dequeued_us,
                end_us.saturating_sub(f.dequeued_us),
            ))
            .parent("job"),
        );
        tracer.record(
            scope(TraceEvent::span(
                "job",
                t.accepted_us,
                end_us.saturating_sub(t.accepted_us),
            ))
            .field("ok", 1.0)
            .field("cache_hit", f64::from(u8::from(f.cache_hit))),
        );
        tracer.flush();
    }

    /// Emit the reduced span tree of an attempt that did not produce a
    /// result: timeout, execution error, or a panic. `terminal` closes
    /// the root `job` span too (with `ok = 0`); a retryable panic leaves
    /// the job open for the next attempt.
    fn trace_abort(&self, t: &Ticket, worker: u64, dequeued_us: u64, terminal: bool) {
        let Some(tracer) = &self.tracer else {
            return;
        };
        let attempt = u64::from(t.attempts) + 1;
        let end_us = tracer.now();
        let scope = |ev: TraceEvent| -> TraceEvent { ev.job(t.seq, &t.id, attempt).worker(worker) };
        tracer.record(
            scope(TraceEvent::span(
                "queue.wait",
                t.accepted_us,
                dequeued_us.saturating_sub(t.accepted_us),
            ))
            .parent("job"),
        );
        tracer.record(
            scope(TraceEvent::span(
                "job.attempt",
                dequeued_us,
                end_us.saturating_sub(dequeued_us),
            ))
            .parent("job"),
        );
        if terminal {
            tracer.record(
                scope(TraceEvent::span(
                    "job",
                    t.accepted_us,
                    end_us.saturating_sub(t.accepted_us),
                ))
                .field("ok", 0.0),
            );
        }
        tracer.flush();
    }
}

/// A `Duration` as saturating whole microseconds.
fn duration_us(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

/// Construct-span detail captured by [`Service::finish_construct`] on a
/// cache miss.
struct ConstructTrace {
    /// The timed `schedule()` call, microseconds.
    construct_us: u64,
    /// Service-clock time right after construction finished.
    end_us: u64,
    /// Per-phase accumulated wall time, in [`PHASES`] order.
    phase_us: [u64; 4],
    /// Per-phase allocation activity, in [`PHASES`] order (all zero
    /// unless the `profiling` allocator is registered).
    phase_allocs: [AllocSnapshot; 4],
    /// Placement-scan counters reported by the scheduler.
    scan: ScanStats,
}

/// Execute-span detail for simulations.
struct ExecTrace {
    /// The engine replay, microseconds.
    exec_us: u64,
    /// Service-clock time used as the span's end anchor.
    end_us: u64,
    /// Events the engine drained.
    events: u64,
}

/// Everything [`Service::trace_finish`] needs to emit one answered
/// attempt's spans.
struct FinishTrace<'a> {
    ticket: &'a Ticket,
    worker: u64,
    dequeued_us: u64,
    /// When the response line started being written.
    respond_us: u64,
    /// Cache-miss construction detail (`None`: served from cache).
    construct: Option<ConstructTrace>,
    /// Portfolio fan-out detail (`None`: not a portfolio construction).
    portfolio: Option<PortfolioTrace>,
    /// Simulation execution detail (`None`: plain submit or cache hit).
    exec: Option<ExecTrace>,
    cache_hit: bool,
}

/// Portfolio-construction detail captured by [`Service::construct_portfolio`]
/// on a cache miss: the whole race plus one entry per member.
struct PortfolioTrace {
    /// The full fan-out (resolve + construct + select), microseconds.
    total_us: u64,
    /// Service-clock time right after the winner was selected.
    end_us: u64,
    /// Per-member construction detail, in member order.
    members: Vec<MemberTrace>,
}

/// One member's slice of a portfolio construction.
struct MemberTrace {
    /// Canonical member spec string (e.g. `ilha(b=4)`).
    label: String,
    /// The member's own construction time, microseconds (for a member
    /// served from the schedule cache: the original run's time).
    construct_us: u64,
    /// The member's schedule makespan.
    makespan: f64,
    /// Whether this member won the race.
    won: bool,
    /// Whether this member was served from the schedule cache.
    cached: bool,
}

/// Write one complete response line under the writer's lock (the
/// no-interleaving guarantee) and flush it so clients see results as they
/// complete. Write errors are swallowed: a vanished client must not take a
/// worker down.
fn write_line(out: &SharedWriter, line: &str) {
    let mut w = lock(out);
    let _ = w.write_all(line.as_bytes());
    let _ = w.write_all(b"\n");
    let _ = w.flush();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{DagSpec, JobSpec, OpProbe, SchedulerSpec, SimSpec, StatsResponse};
    use onesched_testbeds::Testbed;
    use std::collections::HashMap;

    /// A writer that appends into shared memory, for driving the service
    /// without sockets.
    #[derive(Clone, Default)]
    struct MemWriter(Arc<Mutex<Vec<u8>>>);

    impl Write for MemWriter {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    impl MemWriter {
        fn lines(&self) -> Vec<String> {
            let bytes = self.0.lock().unwrap().clone();
            String::from_utf8(bytes)
                .unwrap()
                .lines()
                .map(str::to_string)
                .collect()
        }
    }

    fn drive_svc(svc: &Service, requests: &[Request], workers: usize) -> Vec<String> {
        let sink = MemWriter::default();
        let out: SharedWriter = Arc::new(Mutex::new(Box::new(sink.clone())));
        let input: String = requests
            .iter()
            .map(|r| serde_json::to_string(r).unwrap() + "\n")
            .collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| svc.worker());
            }
            svc.serve_reader(input.as_bytes(), &out);
            svc.drain_queue();
            svc.begin_shutdown();
        });
        sink.lines()
    }

    fn drive(requests: &[Request], workers: usize) -> Vec<String> {
        let svc = Service::new(ServiceConfig {
            workers,
            cache_capacity: 64,
            ..ServiceConfig::default()
        });
        drive_svc(&svc, requests, workers)
    }

    fn submit(id: &str, priority: i64, job: JobSpec) -> Request {
        Request::submit(Some(id.into()), priority, job)
    }

    fn lu_spec(n: usize) -> JobSpec {
        JobSpec {
            dag: DagSpec::testbed(Testbed::Lu, n),
            platform: None,
            scheduler: None,
            model: None,
            validate: true,
        }
    }

    fn temp_ledger(tag: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "onesched-svc-test-{}-{tag}.ndjson",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn dropped_trace_events_surface_in_stats_and_metrics() {
        let mut svc = Service::new(ServiceConfig::default());
        // A tiny sinkless ring: 1 shard × capacity 4, so a handful of
        // records forces the drop-oldest overflow path.
        let tracer = Tracer::with_config(Arc::new(onesched_trace::ManualClock::new()), 1, 4);
        for i in 0..32 {
            tracer.record(TraceEvent::counter("spill", f64::from(i)));
        }
        assert!(tracer.dropped() > 0, "the tiny ring must have dropped");
        let expected = tracer.dropped();
        svc.tracer = Some(tracer);
        let lines = drive_svc(&svc, &[Request::stats()], 1);
        let snap: StatsResponse = serde_json::from_str(&lines[0]).unwrap();
        assert_eq!(snap.trace_events_dropped, expected, "stats gauge");
        let metrics = svc.metrics_text();
        assert!(
            metrics.contains(&format!("onesched_trace_dropped_total {expected}")),
            "scrape carries the drop counter:\n{metrics}"
        );
    }

    #[test]
    fn batch_of_jobs_all_answered_without_interleaving() {
        let reqs: Vec<Request> = (0..12)
            .map(|i| submit(&format!("j{i}"), i % 3, lu_spec(8 + i as usize)))
            .collect();
        let lines = drive(&reqs, 4);
        assert_eq!(lines.len(), 12);
        let mut seen: Vec<String> = Vec::new();
        for line in &lines {
            // every line parses cleanly as a result — interleaved bytes
            // would break the JSON
            let r: ResultResponse = serde_json::from_str(line).expect("clean result line");
            assert_eq!(r.op, "result");
            assert_eq!(r.violations, 0);
            seen.push(r.id);
        }
        seen.sort();
        let mut want: Vec<String> = (0..12).map(|i| format!("j{i}")).collect();
        want.sort();
        assert_eq!(seen, want, "every job answered exactly once");
    }

    #[test]
    fn cache_answers_repeats_and_stats_report_them() {
        let reqs = vec![
            submit("a", 0, lu_spec(10)),
            submit("b", 0, lu_spec(10)),
            submit("c", 0, lu_spec(10)),
            Request::stats(),
        ];
        // one worker: strictly sequential, so b and c must hit the cache
        let lines = drive(&reqs, 1);
        let mut hits = 0;
        let mut fingerprints = std::collections::HashSet::new();
        let mut stats: Option<StatsResponse> = None;
        for line in &lines {
            let probe: OpProbe = serde_json::from_str(line).unwrap();
            match probe.op.as_str() {
                "result" => {
                    let r: ResultResponse = serde_json::from_str(line).unwrap();
                    hits += usize::from(r.cache_hit);
                    fingerprints.insert(r.fingerprint.clone());
                }
                "stats" => stats = Some(serde_json::from_str(line).unwrap()),
                other => panic!("unexpected op {other}"),
            }
        }
        assert_eq!(hits, 2, "second and third submissions served from cache");
        assert_eq!(fingerprints.len(), 1, "cached results are identical");
        // the stats line was answered inline (before the queue drained) or
        // after — either way the final counters are consistent
        let s = stats.expect("stats response");
        assert!(s.cache_hits <= 2);
        assert_eq!(s.op, "stats");
        assert_eq!(s.ledger_bytes, 0, "no ledger configured");
    }

    #[test]
    fn portfolio_job_races_members_caches_them_and_reports_wins() {
        let mut portfolio = lu_spec(10);
        portfolio.scheduler = Some(SchedulerSpec::portfolio(vec![
            SchedulerSpec::heft(),
            SchedulerSpec::ilha(4),
        ]));
        let mut heft = lu_spec(10);
        heft.scheduler = Some(SchedulerSpec::heft());
        let mut ilha = lu_spec(10);
        ilha.scheduler = Some(SchedulerSpec::ilha(4));
        let reqs = vec![
            submit("p1", 0, portfolio.clone()),
            submit("p2", 0, portfolio),
            submit("h", 0, heft),
            submit("i", 0, ilha),
        ];
        // one worker: the portfolio race runs first, so every later
        // submission must be answered from the caches it populated
        let svc = Service::new(ServiceConfig {
            workers: 1,
            cache_capacity: 64,
            ..ServiceConfig::default()
        });
        let lines = drive_svc(&svc, &reqs, 1);
        let mut results: HashMap<String, ResultResponse> = HashMap::new();
        for line in &lines {
            let r: ResultResponse = serde_json::from_str(line).unwrap();
            results.insert(r.id.clone(), r);
        }
        // stats asked *after* the batch drained, so the counters are final
        let stats_lines = drive_svc(&svc, &[Request::stats()], 1);
        let stats: Option<StatsResponse> = serde_json::from_str(&stats_lines[0]).ok();
        let p1 = &results["p1"];
        assert_eq!(p1.scheduler, "portfolio(2)");
        assert!(!p1.cache_hit, "first portfolio run constructs");
        assert_eq!(p1.violations, 0);
        let p2 = &results["p2"];
        assert!(p2.cache_hit, "portfolio repeat is a plain cache hit");
        assert_eq!(p2.fingerprint, p1.fingerprint);
        let (h, i) = (&results["h"], &results["i"]);
        assert!(
            h.cache_hit && i.cache_hit,
            "the race cached both members under their own keys"
        );
        // the portfolio answered with the best member's schedule
        let best = if h.makespan <= i.makespan { h } else { i };
        assert_eq!(p1.makespan, best.makespan);
        assert_eq!(p1.fingerprint, best.fingerprint);
        let s = stats.expect("stats response");
        assert_eq!(s.portfolio.len(), 1, "one member won the one race");
        assert_eq!(s.portfolio[0].wins, 1);
        let winner_label = if best.scheduler == "HEFT" {
            "heft"
        } else {
            "ilha(b=4)"
        };
        assert_eq!(s.portfolio[0].scheduler, winner_label);
        // member constructions landed in the latency table under their
        // display names, the race total under the portfolio's
        let latency_keys: Vec<&str> = s.latency.iter().map(|l| l.scheduler.as_str()).collect();
        for want in ["HEFT", "ILHA(B=4)", "portfolio(2)"] {
            assert!(
                latency_keys.contains(&want),
                "missing {want:?} in {latency_keys:?}"
            );
        }
    }

    #[test]
    fn bad_requests_get_error_responses() {
        let mut bad_model = lu_spec(10);
        bad_model.model = Some("telepathy".into());
        let reqs = vec![
            Request {
                op: "dance".into(),
                id: Some("x".into()),
                priority: None,
                job: None,
                sim: None,
            },
            submit("y", 0, bad_model),
            Request {
                op: "submit".into(),
                id: Some("z".into()),
                priority: None,
                job: None,
                sim: None,
            },
        ];
        let lines = drive(&reqs, 2);
        assert_eq!(lines.len(), 3);
        for line in &lines {
            let e: ErrorResponse = serde_json::from_str(line).expect("error response");
            assert_eq!(e.op, "error");
        }
        let ids: std::collections::HashSet<Option<String>> = lines
            .iter()
            .map(|l| serde_json::from_str::<ErrorResponse>(l).unwrap().id)
            .collect();
        assert!(ids.contains(&Some("y".into())) && ids.contains(&Some("z".into())));
    }

    #[test]
    fn service_results_match_direct_runner_path() {
        // the acceptance criterion in miniature: schedule through the
        // service machinery, compare bit-exact against a direct run
        let spec = JobSpec {
            scheduler: Some(SchedulerSpec::ilha(4)),
            ..lu_spec(20)
        };
        let lines = drive(&[submit("direct", 5, spec.clone())], 2);
        let r: ResultResponse = serde_json::from_str(&lines[0]).unwrap();
        let job = spec.resolve().unwrap();
        let g = job.build_graph();
        let p = job.build_platform();
        let direct = job.build_scheduler().schedule(&g, &p, job.model());
        assert_eq!(
            r.fingerprint,
            format!("{:016x}", onesched_sim::placement_fingerprint(&direct))
        );
        assert_eq!(r.makespan, direct.makespan());
        assert_eq!(r.effective_comms, direct.num_effective_comms());
    }

    #[test]
    fn bounded_queue_rejects_overflow_with_protocol_error() {
        // No workers drain the queue: handle_line fills it synchronously,
        // so the bound is deterministic. high_water == queue_cap disables
        // shedding, leaving the hard cap alone.
        let svc = Service::new(ServiceConfig {
            workers: 1,
            cache_capacity: 8,
            queue_cap: 3,
            high_water: Some(3),
            ..ServiceConfig::default()
        });
        let sink = MemWriter::default();
        let out: SharedWriter = Arc::new(Mutex::new(Box::new(sink.clone())));
        for i in 0..5 {
            let req = submit(&format!("q{i}"), 0, lu_spec(8));
            svc.handle_line(&serde_json::to_string(&req).unwrap(), &out);
        }
        assert_eq!(svc.queue.lock().unwrap().len(), 3, "cap holds");
        let lines = sink.lines();
        assert_eq!(lines.len(), 2, "two rejections answered inline");
        for (line, id) in lines.iter().zip(["q3", "q4"]) {
            let e: ErrorResponse = serde_json::from_str(line).expect("error response");
            assert_eq!(e.id.as_deref(), Some(id));
            assert!(e.message.contains("queue full"), "{}", e.message);
            assert!(
                e.message.contains("3 jobs queued, cap 3"),
                "depth and cap in message: {}",
                e.message
            );
            assert_eq!(e.kind.as_deref(), Some("queue-full"));
            assert!(e.retry_after_ms.is_some(), "backoff hint present");
        }
        assert_eq!(svc.stats.lock().unwrap().errors, 2);
        // draining the queue reopens intake
        std::thread::scope(|scope| {
            scope.spawn(|| svc.worker());
            // wait for the workers to drain, then submit again
            loop {
                if svc.queue.lock().unwrap().is_empty() {
                    break;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            svc.handle_line(
                &serde_json::to_string(&submit("after", 0, lu_spec(8))).unwrap(),
                &out,
            );
            svc.drain_queue();
            svc.begin_shutdown();
        });
        let text = sink.lines().join("\n");
        assert!(
            text.lines()
                .any(|l| l.contains("\"after\"") && l.contains("\"result\"")),
            "post-drain submission accepted: {text}"
        );
    }

    #[test]
    fn high_water_sheds_lowest_priority_work() {
        // No workers: depths are deterministic. high_water 1 means the
        // second submission onward competes by priority.
        let svc = Service::new(ServiceConfig {
            workers: 1,
            cache_capacity: 8,
            queue_cap: 8,
            high_water: Some(1),
            ..ServiceConfig::default()
        });
        let sink = MemWriter::default();
        let out: SharedWriter = Arc::new(Mutex::new(Box::new(sink.clone())));
        let send = |id: &str, prio: i64| {
            let req = submit(id, prio, lu_spec(8));
            svc.handle_line(&serde_json::to_string(&req).unwrap(), &out);
        };
        send("low", 0); // depth 0 < high water: admitted normally
        send("low2", 0); // at high water, does not outrank "low": rejected
        send("high", 5); // outranks "low": admitted, "low" shed
        let mut by_id: HashMap<String, ErrorResponse> = HashMap::new();
        for line in sink.lines() {
            let e: ErrorResponse = serde_json::from_str(&line).expect("error response");
            by_id.insert(e.id.clone().unwrap_or_default(), e);
        }
        assert_eq!(by_id.len(), 2, "low2 rejected, low shed");
        let rejected = &by_id["low2"];
        assert_eq!(rejected.kind.as_deref(), Some("overloaded"));
        assert!(rejected.message.contains("does not outrank"));
        assert!(rejected.retry_after_ms.is_some());
        let shed = &by_id["low"];
        assert_eq!(shed.kind.as_deref(), Some("overloaded"));
        assert!(shed.message.contains("shed by higher-priority work"));
        assert_eq!(svc.stats.lock().unwrap().jobs_shed, 1, "one victim shed");
        assert_eq!(svc.queue.lock().unwrap().len(), 1, "only `high` queued");
        svc.begin_shutdown(); // sheds "high" too — answered shutting-down
        let lines = sink.lines();
        let last: ErrorResponse = serde_json::from_str(&lines[lines.len() - 1]).unwrap();
        assert_eq!(last.id.as_deref(), Some("high"));
        assert_eq!(last.kind.as_deref(), Some("shutting-down"));
    }

    #[test]
    fn expired_deadline_answers_timeout() {
        let svc = Service::new(ServiceConfig {
            workers: 1,
            cache_capacity: 8,
            timeout: Some(Duration::ZERO),
            ..ServiceConfig::default()
        });
        let lines = drive_svc(&svc, &[submit("t0", 0, lu_spec(8))], 1);
        assert_eq!(lines.len(), 1);
        let e: ErrorResponse = serde_json::from_str(&lines[0]).expect("error response");
        assert_eq!(e.id.as_deref(), Some("t0"));
        assert_eq!(e.kind.as_deref(), Some("timeout"));
        assert!(e.message.contains("timeout"), "{}", e.message);
        assert_eq!(svc.stats.lock().unwrap().jobs_timed_out, 1);
    }

    /// A writer whose first `panics` write calls panic — injected faults on
    /// the answer path, which the worker's panic barrier must absorb.
    #[derive(Clone)]
    struct PanicWriter {
        inner: MemWriter,
        panics_left: Arc<Mutex<u32>>,
    }

    impl Write for PanicWriter {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            let mut left = self.panics_left.lock().unwrap();
            if *left > 0 {
                *left -= 1;
                drop(left);
                panic!("injected write fault");
            }
            drop(left);
            self.inner.write(buf)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn panicking_job_is_retried_then_answered() {
        let svc = Service::new(ServiceConfig {
            workers: 1,
            cache_capacity: 8,
            max_retries: 2,
            ..ServiceConfig::default()
        });
        let sink = MemWriter::default();
        let writer = PanicWriter {
            inner: sink.clone(),
            panics_left: Arc::new(Mutex::new(2)),
        };
        let out: SharedWriter = Arc::new(Mutex::new(Box::new(writer)));
        svc.handle_line(
            &serde_json::to_string(&submit("flaky", 3, lu_spec(8))).unwrap(),
            &out,
        );
        std::thread::scope(|scope| {
            scope.spawn(|| svc.worker());
            // wait until the (eventually successful) result line lands
            for _ in 0..400 {
                if sink.lines().iter().any(|l| l.contains("\"result\"")) {
                    break;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            svc.begin_shutdown();
        });
        let lines = sink.lines();
        let r: ResultResponse = serde_json::from_str(
            lines
                .iter()
                .find(|l| l.contains("\"result\""))
                .expect("third attempt answered"),
        )
        .unwrap();
        assert_eq!(r.id, "flaky");
        assert_eq!(svc.stats.lock().unwrap().jobs_retried, 2);
    }

    #[test]
    fn panicking_job_poisons_after_max_retries() {
        let svc = Service::new(ServiceConfig {
            workers: 1,
            cache_capacity: 8,
            max_retries: 1,
            ..ServiceConfig::default()
        });
        let sink = MemWriter::default();
        let writer = PanicWriter {
            inner: sink.clone(),
            panics_left: Arc::new(Mutex::new(u32::MAX)), // never stops panicking
        };
        let out: SharedWriter = Arc::new(Mutex::new(Box::new(writer)));
        svc.handle_line(
            &serde_json::to_string(&submit("cursed", 0, lu_spec(8))).unwrap(),
            &out,
        );
        std::thread::scope(|scope| {
            scope.spawn(|| svc.worker());
            for _ in 0..400 {
                if !svc.poisoned.lock().unwrap().is_empty() {
                    break;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            svc.begin_shutdown();
        });
        assert_eq!(svc.poisoned.lock().unwrap().len(), 1, "job poisoned");
        // resubmission of the same spec is rejected at intake
        let clean = MemWriter::default();
        let out2: SharedWriter = Arc::new(Mutex::new(Box::new(clean.clone())));
        // shutdown already requested; poison check runs first, so reset
        svc.shutdown.store(false, Ordering::Release);
        svc.handle_line(
            &serde_json::to_string(&submit("cursed-again", 0, lu_spec(8))).unwrap(),
            &out2,
        );
        let lines = clean.lines();
        assert_eq!(lines.len(), 1);
        let e: ErrorResponse = serde_json::from_str(&lines[0]).unwrap();
        assert_eq!(e.kind.as_deref(), Some("poisoned"));
    }

    #[test]
    fn simulate_requests_report_degradation_and_cache() {
        let sim = SimSpec::noise("static-order", 0.2, 7);
        let reqs = vec![
            Request::simulate(Some("s0".into()), 0, lu_spec(10), SimSpec::default()),
            Request::simulate(Some("s1".into()), 0, lu_spec(10), sim.clone()),
            Request::simulate(Some("s1-again".into()), 0, lu_spec(10), sim),
            Request::stats(),
        ];
        let lines = drive(&reqs, 1);
        let mut sims: HashMap<String, SimResultResponse> = HashMap::new();
        let mut stats = None;
        for line in &lines {
            let probe: OpProbe = serde_json::from_str(line).unwrap();
            match probe.op.as_str() {
                "sim-result" => {
                    let r: SimResultResponse = serde_json::from_str(line).unwrap();
                    sims.insert(r.id.clone(), r);
                }
                "stats" => stats = Some(serde_json::from_str::<StatsResponse>(line).unwrap()),
                other => panic!("unexpected op {other} in {line}"),
            }
        }
        let zero = &sims["s0"];
        assert_eq!(zero.degradation, 1.0, "zero noise replays exactly");
        assert_eq!(zero.executed_makespan, zero.static_makespan);
        assert_eq!(zero.policy, "static-order");
        let noisy = &sims["s1"];
        assert_ne!(noisy.trace_fingerprint, zero.trace_fingerprint);
        assert_eq!(
            noisy.fingerprint, zero.fingerprint,
            "construction is the same schedule"
        );
        let again = &sims["s1-again"];
        assert!(again.cache_hit, "repeat simulate served from the sim cache");
        assert_eq!(again.trace_fingerprint, noisy.trace_fingerprint);
        // the stats line was answered inline (possibly before the queue
        // drained) — the counters are consistent, not necessarily final
        let s = stats.expect("stats line");
        assert!(s.sims_done <= 3);
        assert!(s.sims_done <= s.jobs_done);
        assert!(s.sim_cache_size <= 2);
    }

    #[test]
    fn shutdown_request_stops_intake() {
        let reqs = vec![
            submit("before", 0, lu_spec(8)),
            Request::shutdown(),
            submit("after", 0, lu_spec(8)), // never read: intake stopped
        ];
        let lines = drive(&reqs, 1);
        let ops: Vec<String> = lines
            .iter()
            .map(|l| serde_json::from_str::<OpProbe>(l).unwrap().op)
            .collect();
        assert!(ops.contains(&"ok".to_string()), "shutdown acked: {ops:?}");
        // "before" is answered exactly once: either the worker ran it
        // (result) or the shutdown drain shed it (shutting-down error)
        let answers: Vec<&String> = lines.iter().filter(|l| l.contains("\"before\"")).collect();
        assert_eq!(answers.len(), 1, "answered exactly once: {lines:?}");
        let probe: OpProbe = serde_json::from_str(answers[0]).unwrap();
        match probe.op.as_str() {
            "result" => {}
            "error" => {
                let e: ErrorResponse = serde_json::from_str(answers[0]).unwrap();
                assert_eq!(e.kind.as_deref(), Some("shutting-down"));
            }
            other => panic!("unexpected op {other}"),
        }
        assert!(
            !lines.iter().any(|l| l.contains("\"after\"")),
            "line after shutdown unread"
        );
    }

    #[test]
    fn ledger_recovery_requeues_and_rehydrates() {
        let path = temp_ledger("recovery");
        let spec_a = lu_spec(9);
        let spec_b = JobSpec {
            scheduler: Some(SchedulerSpec::ilha(4)),
            ..lu_spec(11)
        };
        let cfg = ServiceConfig {
            workers: 1,
            cache_capacity: 8,
            ..ServiceConfig::default()
        };
        // Session 1: accept two jobs, crash before any worker runs them.
        {
            let (svc, report) = Service::with_ledger(cfg.clone(), &path).unwrap();
            assert_eq!(report, RecoveryReport::default(), "fresh ledger");
            let out: SharedWriter = Arc::new(Mutex::new(Box::new(MemWriter::default())));
            svc.handle_line(
                &serde_json::to_string(&submit("a", 0, spec_a.clone())).unwrap(),
                &out,
            );
            svc.handle_line(
                &serde_json::to_string(&submit("b", 2, spec_b.clone())).unwrap(),
                &out,
            );
            assert_eq!(svc.queue.lock().unwrap().len(), 2);
            // dropped here without shutdown: the "crash"
        }
        // Session 2: recovery re-queues both, a worker drains them to the
        // ledger (their clients are gone).
        {
            let (svc, report) = Service::with_ledger(cfg.clone(), &path).unwrap();
            assert_eq!(report.jobs_requeued, 2);
            assert_eq!(report.results_rehydrated, 0);
            assert_eq!(report.events_replayed, 2);
            assert!(!report.torn_tail);
            assert_eq!(svc.stats.lock().unwrap().jobs_recovered, 2);
            std::thread::scope(|scope| {
                scope.spawn(|| svc.worker());
                for _ in 0..400 {
                    if svc.stats.lock().unwrap().jobs_done == 2 {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
                svc.begin_shutdown();
            });
            assert_eq!(svc.stats.lock().unwrap().jobs_done, 2);
        }
        // Session 3: the recorded outcomes rehydrate the cache, so the
        // original client's resubmission is a bit-identical cache hit.
        let (svc, report) = Service::with_ledger(cfg, &path).unwrap();
        assert_eq!(report.jobs_requeued, 0);
        assert_eq!(report.results_rehydrated, 2);
        let lines = drive_svc(&svc, &[submit("a-again", 0, spec_a.clone())], 1);
        let r: ResultResponse = serde_json::from_str(&lines[0]).unwrap();
        assert!(r.cache_hit, "rehydrated cache answers the resubmission");
        let direct = crate::cache::run_job(&spec_a.resolve().unwrap());
        assert_eq!(
            r.fingerprint,
            format!("{:016x}", direct.fingerprint),
            "recovered result is bit-identical to a direct run"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn crash_looping_job_is_poisoned_on_recovery() {
        let path = temp_ledger("poison");
        let spec = lu_spec(13);
        let resolved_key = key_hash(&spec.resolve().unwrap().key);
        {
            // Synthesize the ledger of a job that took three daemons down:
            // submitted once, started three times, never done.
            let (mut ledger, _) = Ledger::open(&path).unwrap();
            ledger
                .append(&LedgerRecord::submitted(
                    0,
                    "looper",
                    &resolved_key,
                    0,
                    spec.clone(),
                    None,
                ))
                .unwrap();
            for _ in 0..3 {
                ledger
                    .append(&LedgerRecord::started(0, "looper", &resolved_key))
                    .unwrap();
            }
            ledger.sync().unwrap();
        }
        let cfg = ServiceConfig {
            workers: 1,
            cache_capacity: 8,
            max_retries: 2,
            ..ServiceConfig::default()
        };
        let (svc, report) = Service::with_ledger(cfg, &path).unwrap();
        assert_eq!(report.poisoned, 1, "3 starts > max-retries 2");
        assert_eq!(report.jobs_requeued, 0);
        assert!(svc.poisoned.lock().unwrap().contains(&resolved_key));
        // resubmission of the poisoned spec is rejected at intake
        let sink = MemWriter::default();
        let out: SharedWriter = Arc::new(Mutex::new(Box::new(sink.clone())));
        svc.handle_line(
            &serde_json::to_string(&submit("looper-again", 0, spec)).unwrap(),
            &out,
        );
        let e: ErrorResponse = serde_json::from_str(&sink.lines()[0]).unwrap();
        assert_eq!(e.kind.as_deref(), Some("poisoned"));
        // the tombstone is durable: the next session poisons it again
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn recovered_job_below_retry_budget_is_requeued_with_backoff() {
        let path = temp_ledger("backoff");
        let spec = lu_spec(7);
        let resolved_key = key_hash(&spec.resolve().unwrap().key);
        {
            let (mut ledger, _) = Ledger::open(&path).unwrap();
            ledger
                .append(&LedgerRecord::submitted(
                    5,
                    "once",
                    &resolved_key,
                    10,
                    spec,
                    None,
                ))
                .unwrap();
            ledger
                .append(&LedgerRecord::started(5, "once", &resolved_key))
                .unwrap();
            ledger.sync().unwrap();
        }
        let cfg = ServiceConfig {
            workers: 1,
            cache_capacity: 8,
            max_retries: 2,
            ..ServiceConfig::default()
        };
        let (svc, report) = Service::with_ledger(cfg, &path).unwrap();
        assert_eq!(report.jobs_requeued, 1, "1 start <= max-retries: retried");
        assert_eq!(report.poisoned, 0);
        // seq resumes after the replayed prefix
        assert_eq!(svc.next_seq.load(Ordering::Relaxed), 6);
        let _ = std::fs::remove_file(&path);
    }
}

//! The long-running scheduling daemon: request intake, the priority queue,
//! the worker pool, and result streaming.
//!
//! Architecture (the scheduler/runner split of dslab, adapted to a
//! service): schedulers stay pure functions of `(graph, platform, model)`;
//! this module owns everything stateful — connections, the job queue, the
//! schedule cache, statistics. Workers are `std::thread::scope` threads
//! sharing the service by reference (no `Arc` of the service itself), the
//! same pool discipline as [`crate::runner`], with a condition variable
//! instead of a job-index counter because the queue is dynamic.
//!
//! Each submission carries a handle to its connection's writer; whichever
//! worker finishes a job serializes the result and writes it under the
//! writer's lock as one complete line, so concurrent jobs never interleave
//! bytes within a line. Responses stream in *completion* order (priority
//! first), not submission order — clients match results by `id`.

use crate::cache::{run_job, run_sim_job, Registry, ServiceStats, SimOutcome};
use crate::protocol::{
    AckResponse, ErrorResponse, ReadyResponse, Request, ResolvedJob, ResolvedSim, ResultResponse,
    SimResultResponse, PROTOCOL_VERSION,
};
use crate::queue::PriorityQueue;
use serde::Serialize;
use std::io::{self, BufRead, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// A line-oriented output shared between the intake thread and the workers.
pub type SharedWriter = Arc<Mutex<Box<dyn Write + Send>>>;

/// Lock a mutex, recovering from poisoning. Everything the daemon guards —
/// counters, caches, the queue, a writer — is valid at every instruction
/// boundary, so a panicking thread elsewhere must not cascade into wedging
/// the rest of the worker pool.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Serialize a response line. The response types cannot fail to serialize,
/// but the answer path must never panic a worker, so the impossible case
/// degrades to a fixed protocol error line.
fn to_line<T: Serialize>(value: &T) -> String {
    serde_json::to_string(value).unwrap_or_else(|_| {
        r#"{"op":"error","message":"internal: response serialization failed"}"#.to_string()
    })
}

/// Default bound on queued jobs (see [`ServiceConfig::queue_cap`]).
pub const DEFAULT_QUEUE_CAP: usize = 16_384;

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads serving the job queue.
    pub workers: usize,
    /// Maximum schedule-cache entries (FIFO eviction). The simulation
    /// cache gets the same capacity.
    pub cache_capacity: usize,
    /// Maximum queued (accepted but unfinished) jobs. Submissions beyond
    /// the cap are answered with a protocol `error` instead of growing the
    /// queue unboundedly — backpressure a flooding client can see.
    pub queue_cap: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: crate::runner::default_threads(),
            cache_capacity: 1024,
            queue_cap: DEFAULT_QUEUE_CAP,
        }
    }
}

/// What a queued submission asks for.
enum Work {
    /// Construct a schedule (`submit`).
    Job(ResolvedJob),
    /// Construct, then execute under perturbation (`simulate`).
    Sim(ResolvedJob, ResolvedSim),
}

/// One queued submission: the resolved work plus where its result goes.
struct Ticket {
    id: String,
    work: Work,
    out: SharedWriter,
}

/// The scheduling service. Create one, then drive it with
/// [`Service::serve_stdio`] or [`Service::serve_tcp`] (or feed request
/// lines directly through [`Service::serve_reader`] for embedding/tests).
pub struct Service {
    cfg: ServiceConfig,
    queue: Mutex<PriorityQueue<Ticket>>,
    ready: Condvar,
    registry: Mutex<Registry>,
    sim_registry: Mutex<Registry<SimOutcome>>,
    stats: Mutex<ServiceStats>,
    shutdown: AtomicBool,
    next_job: AtomicU64,
    started: Instant,
}

/// Poll interval for blocking accept/read loops while checking the
/// shutdown flag.
const POLL: Duration = Duration::from_millis(25);

impl Service {
    /// New idle service.
    pub fn new(cfg: ServiceConfig) -> Service {
        let cfg = ServiceConfig {
            workers: cfg.workers.max(1),
            ..cfg
        };
        Service {
            registry: Mutex::new(Registry::new(cfg.cache_capacity)),
            sim_registry: Mutex::new(Registry::new(cfg.cache_capacity)),
            cfg,
            queue: Mutex::new(PriorityQueue::new()),
            ready: Condvar::new(),
            stats: Mutex::new(ServiceStats::default()),
            shutdown: AtomicBool::new(false),
            next_job: AtomicU64::new(0),
            started: Instant::now(),
        }
    }

    /// Whether shutdown has been requested.
    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// Request shutdown: intake stops, workers drain the queue and exit.
    pub fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        // Notify while holding the queue mutex: a worker is either before
        // its lock acquisition (it will see the flag) or parked in
        // `ready.wait` (it will get this notification) — never in between,
        // which would lose the wakeup and hang the scoped join forever.
        let _guard = lock(&self.queue);
        self.ready.notify_all();
    }

    /// Serve newline-delimited requests from stdin, streaming responses to
    /// stdout, until EOF or a `shutdown` request; queued jobs are drained
    /// before returning. One process = one batch session, which is what the
    /// CI smoke test and shell pipelines use.
    pub fn serve_stdio(&self) -> io::Result<()> {
        let out: SharedWriter = Arc::new(Mutex::new(Box::new(io::stdout())));
        write_line(&out, &to_line(&self.ready_response("stdio")));
        std::thread::scope(|scope| {
            for _ in 0..self.cfg.workers {
                scope.spawn(|| self.worker());
            }
            let stdin = io::stdin().lock();
            self.serve_reader(stdin, &out);
            self.begin_shutdown();
        });
        Ok(())
    }

    /// Bind `addr` and serve concurrent TCP connections until a `shutdown`
    /// request, announcing the bound address as a `ready` line on
    /// `announce` (stdout in the binary; `--tcp 127.0.0.1:0` binds an
    /// ephemeral port, so clients need the announcement).
    pub fn serve_tcp(&self, addr: &str, announce: &SharedWriter) -> io::Result<()> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let bound = listener.local_addr()?;
        write_line(announce, &to_line(&self.ready_response(&bound.to_string())));
        std::thread::scope(|scope| -> io::Result<()> {
            for _ in 0..self.cfg.workers {
                scope.spawn(|| self.worker());
            }
            loop {
                if self.is_shutdown() {
                    break;
                }
                match listener.accept() {
                    Ok((stream, _)) => {
                        scope.spawn(move || {
                            if let Err(e) = self.handle_conn(stream) {
                                eprintln!("onesched-svc: connection error: {e}");
                            }
                        });
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(POLL);
                    }
                    Err(e) => {
                        self.begin_shutdown();
                        return Err(e);
                    }
                }
            }
            self.begin_shutdown();
            Ok(())
        })
    }

    /// Feed request lines from any reader, writing each response to `out`.
    /// Returns at EOF or shutdown (queued jobs may still be in flight —
    /// callers own the worker lifecycle, as [`Service::serve_stdio`] does).
    pub fn serve_reader<R: BufRead>(&self, reader: R, out: &SharedWriter) {
        for line in reader.lines() {
            let Ok(line) = line else { break };
            if line.trim().is_empty() {
                continue;
            }
            self.handle_line(&line, out);
            if self.is_shutdown() {
                break;
            }
        }
    }

    /// The daemon's `ready` announcement.
    fn ready_response(&self, addr: &str) -> ReadyResponse {
        ReadyResponse {
            op: "ready".into(),
            protocol: PROTOCOL_VERSION.into(),
            addr: addr.into(),
            workers: self.cfg.workers,
        }
    }

    /// One TCP connection: read request lines (polling so shutdown can
    /// interrupt), answer on the same stream.
    fn handle_conn(&self, stream: TcpStream) -> io::Result<()> {
        stream.set_read_timeout(Some(POLL))?;
        let out: SharedWriter = Arc::new(Mutex::new(Box::new(stream.try_clone()?)));
        let mut stream = stream;
        let mut buf: Vec<u8> = Vec::new();
        let mut chunk = [0u8; 4096];
        loop {
            if self.is_shutdown() {
                return Ok(());
            }
            match io::Read::read(&mut stream, &mut chunk) {
                Ok(0) => return Ok(()), // client closed
                Ok(n) => {
                    buf.extend_from_slice(&chunk[..n]);
                    // process every complete line in the buffer
                    while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
                        let line: Vec<u8> = buf.drain(..=pos).collect();
                        let line = String::from_utf8_lossy(&line[..line.len() - 1]);
                        if !line.trim().is_empty() {
                            self.handle_line(line.trim_end_matches('\r'), &out);
                        }
                    }
                }
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut => {}
                Err(e) => return Err(e),
            }
        }
    }

    /// Parse and dispatch one request line; every line gets exactly one
    /// response line (possibly later, for submissions).
    pub fn handle_line(&self, line: &str, out: &SharedWriter) {
        let req: Request = match serde_json::from_str(line) {
            Ok(r) => r,
            Err(e) => {
                self.respond_error(out, None, format!("unparseable request: {e}"));
                return;
            }
        };
        match req.op.as_str() {
            "submit" | "simulate" => {
                let op = req.op.as_str();
                let Some(spec) = req.job else {
                    self.respond_error(out, req.id, format!("{op} requires a `job`"));
                    return;
                };
                let job = match spec.resolve() {
                    Ok(j) => j,
                    Err(e) => {
                        self.respond_error(out, req.id, e);
                        return;
                    }
                };
                let work = if op == "simulate" {
                    match req.sim.unwrap_or_default().resolve() {
                        Ok(sim) => Work::Sim(job, sim),
                        Err(e) => {
                            self.respond_error(out, req.id, e);
                            return;
                        }
                    }
                } else {
                    Work::Job(job)
                };
                let id = req.id.unwrap_or_else(|| {
                    format!("job-{}", self.next_job.fetch_add(1, Ordering::Relaxed))
                });
                let ticket = Ticket {
                    id,
                    work,
                    out: Arc::clone(out),
                };
                // Backpressure: bound the queue under the lock so the
                // depth check and the push are atomic, and reject with a
                // protocol error once the cap is reached.
                {
                    let mut q = lock(&self.queue);
                    if q.len() >= self.cfg.queue_cap {
                        drop(q);
                        self.respond_error(
                            out,
                            Some(ticket.id),
                            format!(
                                "queue full ({} jobs queued, cap {})",
                                self.cfg.queue_cap, self.cfg.queue_cap
                            ),
                        );
                        return;
                    }
                    q.push(req.priority.unwrap_or(0), ticket);
                }
                self.ready.notify_one();
            }
            "stats" => {
                let queue_depth = lock(&self.queue).len();
                let (cache_size, evictions) = {
                    let r = lock(&self.registry);
                    (r.len(), r.evictions)
                };
                let (sim_cache_size, sim_evictions) = {
                    let r = lock(&self.sim_registry);
                    (r.len(), r.evictions)
                };
                let snap = lock(&self.stats).snapshot(
                    queue_depth,
                    cache_size,
                    sim_cache_size,
                    evictions + sim_evictions,
                    self.started.elapsed(),
                );
                write_line(out, &to_line(&snap));
            }
            "shutdown" => {
                self.begin_shutdown();
                let ack = AckResponse {
                    op: "ok".into(),
                    message: "shutting down; draining queued jobs".into(),
                };
                write_line(out, &to_line(&ack));
            }
            other => {
                self.respond_error(out, req.id, format!("unknown op {other:?}"));
            }
        }
    }

    fn respond_error(&self, out: &SharedWriter, id: Option<String>, message: String) {
        lock(&self.stats).errors += 1;
        let resp = ErrorResponse {
            op: "error".into(),
            id,
            message,
        };
        write_line(out, &to_line(&resp));
    }

    /// Worker loop: claim the highest-priority job, serve it from the cache
    /// or run it, stream the result. Exits once shutdown is requested *and*
    /// the queue is drained.
    fn worker(&self) {
        loop {
            let ticket = {
                let mut q = lock(&self.queue);
                loop {
                    if let Some(t) = q.pop() {
                        break t;
                    }
                    if self.is_shutdown() {
                        return;
                    }
                    q = match self.ready.wait(q) {
                        Ok(guard) => guard,
                        Err(poisoned) => poisoned.into_inner(),
                    };
                }
            };
            self.run_ticket(ticket);
        }
    }

    fn run_ticket(&self, ticket: Ticket) {
        match ticket.work {
            Work::Job(ref job) => self.run_schedule_ticket(&ticket.id, job, &ticket.out),
            Work::Sim(ref job, ref sim) => self.run_sim_ticket(&ticket.id, job, sim, &ticket.out),
        }
    }

    fn run_schedule_ticket(&self, id: &str, job: &ResolvedJob, out: &SharedWriter) {
        let cached = lock(&self.registry).get(&job.key).cloned();
        let (outcome, cache_hit) = match cached {
            Some(outcome) => (outcome, true),
            None => {
                // run WITHOUT holding any lock: construction is the slow part
                let outcome = run_job(job);
                lock(&self.registry).insert(job.key.clone(), outcome.clone());
                (outcome, false)
            }
        };
        {
            let mut stats = lock(&self.stats);
            stats.jobs_done += 1;
            if cache_hit {
                stats.cache_hits += 1;
            } else {
                stats.record_latency(&outcome.scheduler, outcome.construct);
            }
        }
        let resp = ResultResponse {
            op: "result".into(),
            id: id.into(),
            scheduler: outcome.scheduler,
            model: job.model().name().into(),
            tasks: outcome.tasks,
            makespan: outcome.makespan,
            speedup: outcome.speedup,
            effective_comms: outcome.effective_comms,
            fingerprint: format!("{:016x}", outcome.fingerprint),
            construct_ms: outcome.construct.as_secs_f64() * 1e3,
            cache_hit,
            violations: outcome.violations,
        };
        write_line(out, &to_line(&resp));
    }

    fn run_sim_ticket(&self, id: &str, job: &ResolvedJob, sim: &ResolvedSim, out: &SharedWriter) {
        // The sim cache key is the job key plus the resolved sim spec:
        // the same schedule under a different seed or policy is a
        // different deterministic experiment.
        let key = format!("{}|{}", job.key, sim.key);
        let cached = lock(&self.sim_registry).get(&key).cloned();
        let (outcome, cache_hit) = match cached {
            Some(outcome) => (outcome, true),
            None => match run_sim_job(job, sim) {
                Ok(outcome) => {
                    lock(&self.sim_registry).insert(key, outcome.clone());
                    (outcome, false)
                }
                // The engine refused the schedule: answer with a protocol
                // error instead of panicking the worker. No outcome is
                // cached (the job stays retryable after a fix).
                Err(e) => {
                    self.respond_error(out, Some(id.to_string()), format!("execution failed: {e}"));
                    return;
                }
            },
        };
        {
            let mut stats = lock(&self.stats);
            stats.jobs_done += 1;
            stats.sims_done += 1;
            if cache_hit {
                stats.cache_hits += 1;
            } else {
                stats.record_latency(&outcome.job.scheduler, outcome.job.construct);
            }
        }
        let resp = SimResultResponse {
            op: "sim-result".into(),
            id: id.into(),
            scheduler: outcome.job.scheduler,
            model: job.model().name().into(),
            policy: outcome.policy,
            seed: outcome.seed,
            tasks: outcome.job.tasks,
            static_makespan: outcome.job.makespan,
            executed_makespan: outcome.executed_makespan,
            degradation: outcome.degradation,
            fingerprint: format!("{:016x}", outcome.job.fingerprint),
            trace_fingerprint: format!("{:016x}", outcome.trace_fingerprint),
            construct_ms: outcome.job.construct.as_secs_f64() * 1e3,
            exec_ms: outcome.exec.as_secs_f64() * 1e3,
            cache_hit,
            violations: outcome.job.violations,
        };
        write_line(out, &to_line(&resp));
    }
}

/// Write one complete response line under the writer's lock (the
/// no-interleaving guarantee) and flush it so clients see results as they
/// complete. Write errors are swallowed: a vanished client must not take a
/// worker down.
fn write_line(out: &SharedWriter, line: &str) {
    let mut w = lock(out);
    let _ = w.write_all(line.as_bytes());
    let _ = w.write_all(b"\n");
    let _ = w.flush();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{DagSpec, JobSpec, OpProbe, SchedulerSpec, StatsResponse};
    use onesched_testbeds::Testbed;

    /// A writer that appends into shared memory, for driving the service
    /// without sockets.
    #[derive(Clone, Default)]
    struct MemWriter(Arc<Mutex<Vec<u8>>>);

    impl Write for MemWriter {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn drive(requests: &[Request], workers: usize) -> Vec<String> {
        let svc = Service::new(ServiceConfig {
            workers,
            cache_capacity: 64,
            ..ServiceConfig::default()
        });
        let sink = MemWriter::default();
        let out: SharedWriter = Arc::new(Mutex::new(Box::new(sink.clone())));
        let input: String = requests
            .iter()
            .map(|r| serde_json::to_string(r).unwrap() + "\n")
            .collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| svc.worker());
            }
            svc.serve_reader(input.as_bytes(), &out);
            svc.begin_shutdown();
        });
        let bytes = sink.0.lock().unwrap().clone();
        String::from_utf8(bytes)
            .unwrap()
            .lines()
            .map(str::to_string)
            .collect()
    }

    fn submit(id: &str, priority: i64, job: JobSpec) -> Request {
        Request::submit(Some(id.into()), priority, job)
    }

    fn lu_spec(n: usize) -> JobSpec {
        JobSpec {
            dag: DagSpec::testbed(Testbed::Lu, n),
            platform: None,
            scheduler: None,
            model: None,
            validate: true,
        }
    }

    #[test]
    fn batch_of_jobs_all_answered_without_interleaving() {
        let reqs: Vec<Request> = (0..12)
            .map(|i| submit(&format!("j{i}"), i % 3, lu_spec(8 + i as usize)))
            .collect();
        let lines = drive(&reqs, 4);
        assert_eq!(lines.len(), 12);
        let mut seen: Vec<String> = Vec::new();
        for line in &lines {
            // every line parses cleanly as a result — interleaved bytes
            // would break the JSON
            let r: ResultResponse = serde_json::from_str(line).expect("clean result line");
            assert_eq!(r.op, "result");
            assert_eq!(r.violations, 0);
            seen.push(r.id);
        }
        seen.sort();
        let mut want: Vec<String> = (0..12).map(|i| format!("j{i}")).collect();
        want.sort();
        assert_eq!(seen, want, "every job answered exactly once");
    }

    #[test]
    fn cache_answers_repeats_and_stats_report_them() {
        let reqs = vec![
            submit("a", 0, lu_spec(10)),
            submit("b", 0, lu_spec(10)),
            submit("c", 0, lu_spec(10)),
            Request::stats(),
        ];
        // one worker: strictly sequential, so b and c must hit the cache
        let lines = drive(&reqs, 1);
        let mut hits = 0;
        let mut fingerprints = std::collections::HashSet::new();
        let mut stats: Option<StatsResponse> = None;
        for line in &lines {
            let probe: OpProbe = serde_json::from_str(line).unwrap();
            match probe.op.as_str() {
                "result" => {
                    let r: ResultResponse = serde_json::from_str(line).unwrap();
                    hits += usize::from(r.cache_hit);
                    fingerprints.insert(r.fingerprint.clone());
                }
                "stats" => stats = Some(serde_json::from_str(line).unwrap()),
                other => panic!("unexpected op {other}"),
            }
        }
        assert_eq!(hits, 2, "second and third submissions served from cache");
        assert_eq!(fingerprints.len(), 1, "cached results are identical");
        // the stats line was answered inline (before the queue drained) or
        // after — either way the final counters are consistent
        let s = stats.expect("stats response");
        assert!(s.cache_hits <= 2);
        assert_eq!(s.op, "stats");
    }

    #[test]
    fn bad_requests_get_error_responses() {
        let mut bad_model = lu_spec(10);
        bad_model.model = Some("telepathy".into());
        let reqs = vec![
            Request {
                op: "dance".into(),
                id: Some("x".into()),
                priority: None,
                job: None,
                sim: None,
            },
            submit("y", 0, bad_model),
            Request {
                op: "submit".into(),
                id: Some("z".into()),
                priority: None,
                job: None,
                sim: None,
            },
        ];
        let lines = drive(&reqs, 2);
        assert_eq!(lines.len(), 3);
        for line in &lines {
            let e: ErrorResponse = serde_json::from_str(line).expect("error response");
            assert_eq!(e.op, "error");
        }
        let ids: std::collections::HashSet<Option<String>> = lines
            .iter()
            .map(|l| serde_json::from_str::<ErrorResponse>(l).unwrap().id)
            .collect();
        assert!(ids.contains(&Some("y".into())) && ids.contains(&Some("z".into())));
    }

    #[test]
    fn service_results_match_direct_runner_path() {
        // the acceptance criterion in miniature: schedule through the
        // service machinery, compare bit-exact against a direct run
        let spec = JobSpec {
            scheduler: Some(SchedulerSpec::ilha(4)),
            ..lu_spec(20)
        };
        let lines = drive(&[submit("direct", 5, spec.clone())], 2);
        let r: ResultResponse = serde_json::from_str(&lines[0]).unwrap();
        let job = spec.resolve().unwrap();
        let g = job.build_graph();
        let p = job.build_platform();
        let direct = job.build_scheduler().schedule(&g, &p, job.model());
        assert_eq!(
            r.fingerprint,
            format!("{:016x}", onesched_sim::placement_fingerprint(&direct))
        );
        assert_eq!(r.makespan, direct.makespan());
        assert_eq!(r.effective_comms, direct.num_effective_comms());
    }

    #[test]
    fn bounded_queue_rejects_overflow_with_protocol_error() {
        // No workers drain the queue: handle_line fills it synchronously,
        // so the bound is deterministic.
        let svc = Service::new(ServiceConfig {
            workers: 1,
            cache_capacity: 8,
            queue_cap: 3,
        });
        let sink = MemWriter::default();
        let out: SharedWriter = Arc::new(Mutex::new(Box::new(sink.clone())));
        for i in 0..5 {
            let req = submit(&format!("q{i}"), 0, lu_spec(8));
            svc.handle_line(&serde_json::to_string(&req).unwrap(), &out);
        }
        assert_eq!(svc.queue.lock().unwrap().len(), 3, "cap holds");
        let bytes = sink.0.lock().unwrap().clone();
        let lines: Vec<String> = String::from_utf8(bytes)
            .unwrap()
            .lines()
            .map(str::to_string)
            .collect();
        assert_eq!(lines.len(), 2, "two rejections answered inline");
        for (line, id) in lines.iter().zip(["q3", "q4"]) {
            let e: ErrorResponse = serde_json::from_str(line).expect("error response");
            assert_eq!(e.id.as_deref(), Some(id));
            assert!(e.message.contains("queue full"), "{}", e.message);
        }
        assert_eq!(svc.stats.lock().unwrap().errors, 2);
        // draining the queue reopens intake
        std::thread::scope(|scope| {
            scope.spawn(|| svc.worker());
            // wait for the workers to drain, then submit again
            loop {
                if svc.queue.lock().unwrap().is_empty() {
                    break;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            svc.handle_line(
                &serde_json::to_string(&submit("after", 0, lu_spec(8))).unwrap(),
                &out,
            );
            svc.begin_shutdown();
        });
        let bytes = sink.0.lock().unwrap().clone();
        let text = String::from_utf8(bytes).unwrap();
        assert!(
            text.lines()
                .any(|l| l.contains("\"after\"") && l.contains("\"result\"")),
            "post-drain submission accepted: {text}"
        );
    }

    #[test]
    fn simulate_requests_report_degradation_and_cache() {
        let sim = SimSpec::noise("static-order", 0.2, 7);
        let reqs = vec![
            Request::simulate(Some("s0".into()), 0, lu_spec(10), SimSpec::default()),
            Request::simulate(Some("s1".into()), 0, lu_spec(10), sim.clone()),
            Request::simulate(Some("s1-again".into()), 0, lu_spec(10), sim),
            Request::stats(),
        ];
        let lines = drive(&reqs, 1);
        let mut sims: HashMap<String, SimResultResponse> = HashMap::new();
        let mut stats = None;
        for line in &lines {
            let probe: OpProbe = serde_json::from_str(line).unwrap();
            match probe.op.as_str() {
                "sim-result" => {
                    let r: SimResultResponse = serde_json::from_str(line).unwrap();
                    sims.insert(r.id.clone(), r);
                }
                "stats" => stats = Some(serde_json::from_str::<StatsResponse>(line).unwrap()),
                other => panic!("unexpected op {other} in {line}"),
            }
        }
        let zero = &sims["s0"];
        assert_eq!(zero.degradation, 1.0, "zero noise replays exactly");
        assert_eq!(zero.executed_makespan, zero.static_makespan);
        assert_eq!(zero.policy, "static-order");
        let noisy = &sims["s1"];
        assert_ne!(noisy.trace_fingerprint, zero.trace_fingerprint);
        assert_eq!(
            noisy.fingerprint, zero.fingerprint,
            "construction is the same schedule"
        );
        let again = &sims["s1-again"];
        assert!(again.cache_hit, "repeat simulate served from the sim cache");
        assert_eq!(again.trace_fingerprint, noisy.trace_fingerprint);
        // the stats line was answered inline (possibly before the queue
        // drained) — the counters are consistent, not necessarily final
        let s = stats.expect("stats line");
        assert!(s.sims_done <= 3);
        assert!(s.sims_done <= s.jobs_done);
        assert!(s.sim_cache_size <= 2);
    }

    use crate::protocol::SimSpec;
    use std::collections::HashMap;

    #[test]
    fn shutdown_request_stops_intake() {
        let reqs = vec![
            submit("before", 0, lu_spec(8)),
            Request::shutdown(),
            submit("after", 0, lu_spec(8)), // never read: intake stopped
        ];
        let lines = drive(&reqs, 1);
        let ops: Vec<String> = lines
            .iter()
            .map(|l| serde_json::from_str::<OpProbe>(l).unwrap().op)
            .collect();
        assert!(ops.contains(&"ok".to_string()), "shutdown acked: {ops:?}");
        let ids: Vec<String> = lines
            .iter()
            .filter(|l| l.contains("\"result\""))
            .map(|l| serde_json::from_str::<ResultResponse>(l).unwrap().id)
            .collect();
        assert_eq!(ids, ["before"], "queued job drained, later line unread");
    }
}

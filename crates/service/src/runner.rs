//! Thread-pool sweep runner: the experiment harness is embarrassingly
//! parallel over `(testbed, size, scheduler)`, so full-size figure
//! regeneration fans out over a `std::thread::scope` worker pool (no
//! external dependencies).
//!
//! Each job regenerates its task graph, builds one schedule, and reports the
//! quality numbers plus the *schedule-construction time* — the quantity the
//! perf baseline (`BENCH_2.json`) tracks. Results come back in job order
//! regardless of which worker ran them, so CSV output is deterministic.
//!
//! The long-running scheduling service ([`crate::Service`]) builds on the
//! same job-isolation discipline: one job = one graph + one scheduler + one
//! `schedule()` call, timed alone, with nothing shared between jobs but the
//! immutable platform.

use onesched_dag::TaskGraph;
use onesched_heuristics::{Heft, Ilha, Scheduler};
use onesched_platform::Platform;
use onesched_sim::{CommModel, Schedule};
use onesched_testbeds::{Testbed, PAPER_C};
use onesched_trace::{Clock, WallClock};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Build one schedule, timing the `schedule()` call alone (graph generation
/// and statistics excluded). The shared execution step of the sweep runner
/// and the scheduling service: both isolate a job to exactly this call.
pub fn schedule_timed(
    g: &TaskGraph,
    platform: &Platform,
    scheduler: &dyn Scheduler,
    model: CommModel,
) -> (Schedule, Duration) {
    schedule_timed_probed(g, platform, scheduler, model, &onesched_heuristics::NoProbe)
}

/// [`schedule_timed`] with an observer: the probe sees phase boundaries
/// and placement-scan counters but cannot influence the schedule, so
/// timing and fingerprints match the bare call.
pub fn schedule_timed_probed(
    g: &TaskGraph,
    platform: &Platform,
    scheduler: &dyn Scheduler,
    model: CommModel,
    probe: &dyn onesched_heuristics::Probe,
) -> (Schedule, Duration) {
    // Wall time through the trace crate's Clock (the D104 discipline:
    // no direct Instant reads outside WallClock). Microsecond
    // resolution, which is what every consumer reports anyway.
    let clock = WallClock::new();
    let t0 = clock.now_micros();
    let sched = scheduler.schedule_with_probe(g, platform, model, probe);
    let construct = Duration::from_micros(clock.now_micros().saturating_sub(t0));
    (sched, construct)
}

/// Which scheduler a sweep job runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedKind {
    /// One-port HEFT with the paper-faithful policy.
    Heft,
    /// ILHA with chunk size `b`.
    Ilha(usize),
}

impl SchedKind {
    /// Stable key used in CSVs, bench JSON, and baselines.
    pub fn key(self) -> &'static str {
        match self {
            SchedKind::Heft => "HEFT",
            SchedKind::Ilha(_) => "ILHA",
        }
    }

    /// Instantiate the scheduler.
    pub fn build(self) -> Box<dyn Scheduler> {
        match self {
            SchedKind::Heft => Box::new(Heft::new()),
            SchedKind::Ilha(b) => Box::new(Ilha::new(b)),
        }
    }
}

/// One unit of sweep work: schedule one testbed instance with one scheduler.
#[derive(Debug, Clone, Copy)]
pub struct SweepJob {
    /// Which testbed to generate.
    pub testbed: Testbed,
    /// Problem size `n`.
    pub size: usize,
    /// Which scheduler to run.
    pub sched: SchedKind,
}

/// The outcome of one [`SweepJob`].
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// The job this result answers.
    pub job: SweepJob,
    /// Number of tasks in the generated graph.
    pub tasks: usize,
    /// Schedule makespan.
    pub makespan: f64,
    /// Speedup over the fastest-single-processor sequential time.
    pub speedup: f64,
    /// Number of effective (non-zero duration) communications.
    pub effective_comms: usize,
    /// Wall-clock time of the `schedule()` call alone (graph generation and
    /// statistics excluded).
    pub construct: Duration,
    /// Allocation activity of the first `schedule()` call (zero without
    /// the `profiling` allocator registered).
    pub alloc: onesched_prof::AllocSnapshot,
    /// Placement-scan counters of the first `schedule()` call.
    pub scan: onesched_heuristics::ScanStats,
}

/// The standard figure-sweep job list: for each testbed and size, one HEFT
/// job and one ILHA job (with the testbed's paper-best chunk size).
pub fn paper_jobs(testbeds: &[Testbed], sizes: &[usize]) -> Vec<SweepJob> {
    let mut jobs = Vec::with_capacity(testbeds.len() * sizes.len() * 2);
    for &tb in testbeds {
        for &n in sizes {
            for sched in [SchedKind::Heft, SchedKind::Ilha(tb.paper_best_b())] {
                jobs.push(SweepJob {
                    testbed: tb,
                    size: n,
                    sched,
                });
            }
        }
    }
    jobs
}

/// Default worker count: the machine's available parallelism.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Run every job on a scoped worker pool of `threads` workers and return the
/// results in job order. `threads == 1` degenerates to a serial run (useful
/// for clean construction-time measurements).
pub fn run_sweep(jobs: &[SweepJob], threads: usize, model: CommModel) -> Vec<SweepResult> {
    run_sweep_repeated(jobs, threads, model, 1)
}

/// [`run_sweep`] measuring each job's construction time as the minimum over
/// `repeats` runs — the robust estimator for perf gating on noisy (shared)
/// hardware. Schedules are deterministic, so quality numbers are unaffected.
pub fn run_sweep_repeated(
    jobs: &[SweepJob],
    threads: usize,
    model: CommModel,
    repeats: usize,
) -> Vec<SweepResult> {
    let platform = Platform::paper();
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<SweepResult>>> = jobs.iter().map(|_| Mutex::new(None)).collect();
    let workers = threads.clamp(1, jobs.len().max(1));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                // the atomic counter can exceed jobs.len(); .get() is both
                // the bounds check and the loop exit
                let Some((job, slot)) = jobs.get(i).zip(slots.get(i)) else {
                    break;
                };
                let r = run_job(job, &platform, model, repeats.max(1));
                let mut slot = slot.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
                *slot = Some(r);
            });
        }
    });
    // Every index was claimed by exactly one worker (the atomic counter hands
    // each out once and the scope joins before we get here), but a worker
    // that panicked mid-job leaves its slot empty — recompute such a job
    // serially rather than panicking the sweep.
    slots
        .into_iter()
        .zip(jobs)
        .map(|(m, job)| {
            m.into_inner()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .unwrap_or_else(|| run_job(job, &platform, model, repeats.max(1)))
        })
        .collect()
}

/// A minimal write-only probe for sweeps: placement-scan counters only
/// (phase timing stays the service probe's job).
#[derive(Default)]
struct ScanProbe(std::cell::Cell<onesched_heuristics::ScanStats>);

impl onesched_heuristics::Probe for ScanProbe {
    fn placement_scan(&self, scan: &onesched_heuristics::ScanStats) {
        let mut acc = self.0.get();
        acc.add(scan);
        self.0.set(acc);
    }
}

fn run_job(job: &SweepJob, platform: &Platform, model: CommModel, repeats: usize) -> SweepResult {
    let g = job.testbed.generate(job.size, PAPER_C);
    let scheduler = job.sched.build();
    let probe = ScanProbe::default();
    let a0 = onesched_prof::snapshot();
    let (sched, mut construct) =
        schedule_timed_probed(&g, platform, scheduler.as_ref(), model, &probe);
    let alloc = onesched_prof::snapshot().delta_since(a0);
    // alloc and scan counters come from the first run only: repeats are
    // bit-identical, so accumulating them would just multiply the totals
    let scan = probe.0.get();
    for _ in 1..repeats {
        let (again, t) = schedule_timed(&g, platform, scheduler.as_ref(), model);
        construct = construct.min(t);
        debug_assert!(again.makespan() == sched.makespan());
    }
    SweepResult {
        job: *job,
        tasks: g.num_tasks(),
        makespan: sched.makespan(),
        speedup: sched.speedup(&g, platform),
        effective_comms: sched.num_effective_comms(),
        construct,
        alloc,
        scan,
    }
}

/// One record of the machine-readable perf trajectory (`BENCH_2.json`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchEntry {
    /// Testbed display name.
    pub testbed: String,
    /// Problem size `n`.
    pub size: usize,
    /// Scheduler key (`"HEFT"` / `"ILHA"`).
    pub scheduler: String,
    /// Number of tasks scheduled.
    pub tasks: usize,
    /// Schedule-construction wall-clock time, milliseconds.
    pub construct_ms: f64,
    /// Construction time of the recorded previous implementation (the seed
    /// at PR 2), carried over via `--bench-baseline`; `null` when unknown.
    pub seed_construct_ms: Option<f64>,
    /// Schedule makespan (quality cross-check).
    pub makespan: f64,
    /// Schedule speedup (quality cross-check).
    pub speedup: f64,
    /// Allocation count of the construction (v2 column; present only when
    /// the run registered the profiling allocator).
    #[serde(default)]
    pub allocs: Option<u64>,
    /// Bytes requested by the construction (v2 column, same gating).
    #[serde(default)]
    pub alloc_bytes: Option<u64>,
    /// Fraction of placement-scan candidates pruned before full evaluation
    /// (v2 column; deterministic, so always present in v2 files).
    #[serde(default)]
    pub prune_rate: Option<f64>,
}

/// The bench JSON file: schema tag, run configuration, entries.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchFile {
    /// Format tag (`onesched-bench/v1` or `onesched-bench/v2`).
    pub schema: String,
    /// Worker threads the sweep ran with.
    pub threads: usize,
    /// Entries in job order.
    pub entries: Vec<BenchEntry>,
}

/// Legacy schema tag (no alloc/prune columns); still readable because the
/// v2 columns are optional and default to absent.
pub const BENCH_SCHEMA: &str = "onesched-bench/v1";

/// Schema tag written into bench JSON files produced by this build.
pub const BENCH_SCHEMA_V2: &str = "onesched-bench/v2";

impl BenchFile {
    /// Package sweep results as a bench file, optionally carrying over the
    /// matching construction times of `baseline` as `seed_construct_ms`.
    pub fn from_results(
        results: &[SweepResult],
        threads: usize,
        baseline: Option<&BenchFile>,
    ) -> BenchFile {
        let entries = results
            .iter()
            .map(|r| {
                let seed = baseline.and_then(|b| {
                    b.entries
                        .iter()
                        .find(|e| {
                            e.testbed == r.job.testbed.name()
                                && e.size == r.job.size
                                && e.scheduler == r.job.sched.key()
                        })
                        .map(|e| e.seed_construct_ms.unwrap_or(e.construct_ms))
                });
                // alloc columns mean something only when the counting
                // allocator actually observed the run; prune_rate is
                // deterministic and always recorded
                let profiled = onesched_prof::enabled();
                BenchEntry {
                    testbed: r.job.testbed.name().to_string(),
                    size: r.job.size,
                    scheduler: r.job.sched.key().to_string(),
                    tasks: r.tasks,
                    construct_ms: r.construct.as_secs_f64() * 1e3,
                    seed_construct_ms: seed,
                    makespan: r.makespan,
                    speedup: r.speedup,
                    allocs: profiled.then_some(r.alloc.allocs),
                    alloc_bytes: profiled.then_some(r.alloc.bytes),
                    prune_rate: Some(if r.scan.candidates == 0 {
                        0.0
                    } else {
                        r.scan.pruned() as f64 / r.scan.candidates as f64
                    }),
                }
            })
            .collect();
        BenchFile {
            schema: BENCH_SCHEMA_V2.to_string(),
            threads,
            entries,
        }
    }
}

/// One dated datapoint of the committed perf trajectory
/// (`BENCH_HISTORY.json`): a full bench file plus when and where it was
/// recorded.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchHistoryEntry {
    /// ISO date (`YYYY-MM-DD`) the datapoint was recorded.
    pub date: String,
    /// Free-form provenance label (`seed`, `pr9`, `ci`, hostname, ...).
    pub label: String,
    /// The recorded bench run.
    pub bench: BenchFile,
}

/// The committed perf-trajectory file: an append-only, date-ordered list
/// of bench runs. The CI `bench-compare` step validates this schema and
/// appends the run's datapoint as an artifact.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchHistory {
    /// Format tag (`onesched-bench-history/v1`).
    pub schema: String,
    /// Datapoints, oldest first.
    pub entries: Vec<BenchHistoryEntry>,
}

/// Schema tag of [`BenchHistory`] files.
pub const BENCH_HISTORY_SCHEMA: &str = "onesched-bench-history/v1";

impl BenchHistory {
    /// An empty history with the current schema tag.
    pub fn new() -> BenchHistory {
        BenchHistory {
            schema: BENCH_HISTORY_SCHEMA.to_string(),
            entries: Vec::new(),
        }
    }

    /// Validate the schema invariants: the format tag, ISO dates in
    /// non-decreasing order, known per-entry bench schema tags, and
    /// non-empty entry lists. Returns every violation (empty = valid).
    pub fn validate(&self) -> Vec<String> {
        let mut bad = Vec::new();
        if self.schema != BENCH_HISTORY_SCHEMA {
            bad.push(format!(
                "schema {:?}, expected {BENCH_HISTORY_SCHEMA:?}",
                self.schema
            ));
        }
        let mut prev = String::new();
        for (i, e) in self.entries.iter().enumerate() {
            let iso = e.date.len() == 10
                && e.date.chars().enumerate().all(|(j, c)| match j {
                    4 | 7 => c == '-',
                    _ => c.is_ascii_digit(),
                });
            if !iso {
                bad.push(format!("entry {i}: date {:?} is not YYYY-MM-DD", e.date));
            } else if e.date < prev {
                bad.push(format!("entry {i}: date {} before {prev}", e.date));
            } else {
                prev = e.date.clone();
            }
            if e.label.is_empty() {
                bad.push(format!("entry {i}: empty label"));
            }
            if e.bench.schema != BENCH_SCHEMA && e.bench.schema != BENCH_SCHEMA_V2 {
                bad.push(format!(
                    "entry {i}: unknown bench schema {:?}",
                    e.bench.schema
                ));
            }
            if e.bench.entries.is_empty() {
                bad.push(format!("entry {i}: empty bench entry list"));
            }
        }
        bad
    }
}

impl Default for BenchHistory {
    fn default() -> Self {
        BenchHistory::new()
    }
}

/// Compare a fresh bench run against a committed baseline: every matching
/// `(testbed, size, scheduler)` entry whose baseline construction time is at
/// least `floor_ms` must not exceed `max_ratio ×` the baseline. Returns the
/// offending descriptions (empty = pass).
pub fn bench_regressions(
    current: &BenchFile,
    baseline: &BenchFile,
    max_ratio: f64,
    floor_ms: f64,
) -> Vec<String> {
    let mut bad = Vec::new();
    for cur in &current.entries {
        let Some(base) = baseline.entries.iter().find(|e| {
            e.testbed == cur.testbed && e.size == cur.size && e.scheduler == cur.scheduler
        }) else {
            continue;
        };
        if base.construct_ms < floor_ms {
            continue; // sub-floor timings are scheduler-start noise
        }
        if cur.construct_ms > base.construct_ms * max_ratio {
            bad.push(format!(
                "{} n={} {}: {:.2} ms vs baseline {:.2} ms (> {max_ratio:.1}x)",
                cur.testbed, cur.size, cur.scheduler, cur.construct_ms, base.construct_ms
            ));
        }
    }
    bad
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_results_deterministic_and_in_job_order() {
        let jobs = paper_jobs(&[Testbed::Lu, Testbed::ForkJoin], &[10, 20]);
        assert_eq!(jobs.len(), 8);
        let serial = run_sweep(&jobs, 1, CommModel::OnePortBidir);
        let parallel = run_sweep(&jobs, 4, CommModel::OnePortBidir);
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.job.testbed, p.job.testbed);
            assert_eq!(s.job.size, p.job.size);
            assert_eq!(s.job.sched.key(), p.job.sched.key());
            assert_eq!(
                s.makespan, p.makespan,
                "parallelism must not change schedules"
            );
            assert_eq!(s.effective_comms, p.effective_comms);
        }
    }

    #[test]
    fn bench_file_roundtrip_and_compare() {
        let jobs = paper_jobs(&[Testbed::ForkJoin], &[10]);
        let results = run_sweep(&jobs, 2, CommModel::OnePortBidir);
        let file = BenchFile::from_results(&results, 2, None);
        let json = serde_json::to_string(&file).unwrap();
        let back: BenchFile = serde_json::from_str(&json).unwrap();
        assert_eq!(back.entries.len(), file.entries.len());
        assert_eq!(back.schema, BENCH_SCHEMA_V2);
        // prune_rate is always recorded; alloc columns only under profiling
        assert!(back.entries.iter().all(|e| e.prune_rate.is_some()));
        if !onesched_prof::enabled() {
            assert!(back.entries.iter().all(|e| e.allocs.is_none()));
        }
        // identical files never regress against each other
        assert!(bench_regressions(&back, &file, 2.0, 0.0).is_empty());
        // a 3x slowdown is flagged
        let mut slow = file.clone();
        for e in &mut slow.entries {
            e.construct_ms *= 3.0;
        }
        assert!(!bench_regressions(&slow, &file, 2.0, 0.0).is_empty());
    }

    #[test]
    fn bench_history_validation_catches_malformed_files() {
        let jobs = paper_jobs(&[Testbed::ForkJoin], &[10]);
        let bench = BenchFile::from_results(&run_sweep(&jobs, 1, CommModel::OnePortBidir), 1, None);
        let mut hist = BenchHistory::new();
        assert!(hist.validate().is_empty(), "empty history is valid");
        hist.entries.push(BenchHistoryEntry {
            date: "2026-07-30".into(),
            label: "seed".into(),
            bench: bench.clone(),
        });
        hist.entries.push(BenchHistoryEntry {
            date: "2026-08-08".into(),
            label: "pr9".into(),
            bench: bench.clone(),
        });
        assert!(hist.validate().is_empty(), "{:?}", hist.validate());
        // round-trips through JSON
        let back: BenchHistory =
            serde_json::from_str(&serde_json::to_string(&hist).unwrap()).unwrap();
        assert!(back.validate().is_empty());
        // each invariant is enforced
        let mut bad = hist.clone();
        bad.schema = "nope/v0".into();
        assert!(!bad.validate().is_empty());
        let mut bad = hist.clone();
        bad.entries[1].date = "08-08-2026".into();
        assert!(!bad.validate().is_empty());
        let mut bad = hist.clone();
        bad.entries[0].date = "2026-12-31".into();
        assert!(!bad.validate().is_empty(), "out-of-order dates rejected");
        let mut bad = hist.clone();
        bad.entries[0].label.clear();
        assert!(!bad.validate().is_empty());
        let mut bad = hist.clone();
        bad.entries[0].bench.schema = "onesched-bench/v9".into();
        assert!(!bad.validate().is_empty());
        let mut bad = hist;
        bad.entries[0].bench.entries.clear();
        assert!(!bad.validate().is_empty());
    }

    #[test]
    fn v1_bench_files_still_parse() {
        let v1 = format!(
            r#"{{"schema":"{BENCH_SCHEMA}","threads":1,"entries":[{{"testbed":"LU","size":10,"scheduler":"HEFT","tasks":55,"construct_ms":1.5,"seed_construct_ms":null,"makespan":10.0,"speedup":3.0}}]}}"#
        );
        let back: BenchFile = serde_json::from_str(&v1).unwrap();
        assert_eq!(back.schema, BENCH_SCHEMA);
        let e = back.entries.first().unwrap();
        assert_eq!(e.allocs, None);
        assert_eq!(e.alloc_bytes, None);
        assert_eq!(e.prune_rate, None);
    }

    #[test]
    fn baseline_times_carry_over() {
        let jobs = paper_jobs(&[Testbed::ForkJoin], &[10]);
        let results = run_sweep(&jobs, 1, CommModel::OnePortBidir);
        let mut seed = BenchFile::from_results(&results, 1, None);
        for e in &mut seed.entries {
            e.construct_ms = 42.0;
        }
        let merged = BenchFile::from_results(&results, 1, Some(&seed));
        assert!(merged
            .entries
            .iter()
            .all(|e| e.seed_construct_ms == Some(42.0)));
    }
}

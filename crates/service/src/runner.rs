//! Thread-pool sweep runner: the experiment harness is embarrassingly
//! parallel over `(testbed, size, scheduler)`, so full-size figure
//! regeneration fans out over a `std::thread::scope` worker pool (no
//! external dependencies).
//!
//! Each job regenerates its task graph, builds one schedule, and reports the
//! quality numbers plus the *schedule-construction time* — the quantity the
//! perf baseline (`BENCH_2.json`) tracks. Results come back in job order
//! regardless of which worker ran them, so CSV output is deterministic.
//!
//! The long-running scheduling service ([`crate::Service`]) builds on the
//! same job-isolation discipline: one job = one graph + one scheduler + one
//! `schedule()` call, timed alone, with nothing shared between jobs but the
//! immutable platform.

use onesched_dag::TaskGraph;
use onesched_heuristics::{Heft, Ilha, Scheduler};
use onesched_platform::Platform;
use onesched_sim::{CommModel, Schedule};
use onesched_testbeds::{Testbed, PAPER_C};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Build one schedule, timing the `schedule()` call alone (graph generation
/// and statistics excluded). The shared execution step of the sweep runner
/// and the scheduling service: both isolate a job to exactly this call.
pub fn schedule_timed(
    g: &TaskGraph,
    platform: &Platform,
    scheduler: &dyn Scheduler,
    model: CommModel,
) -> (Schedule, Duration) {
    schedule_timed_probed(g, platform, scheduler, model, &onesched_heuristics::NoProbe)
}

/// [`schedule_timed`] with an observer: the probe sees phase boundaries
/// and placement-scan counters but cannot influence the schedule, so
/// timing and fingerprints match the bare call.
pub fn schedule_timed_probed(
    g: &TaskGraph,
    platform: &Platform,
    scheduler: &dyn Scheduler,
    model: CommModel,
    probe: &dyn onesched_heuristics::Probe,
) -> (Schedule, Duration) {
    let t0 = Instant::now();
    let sched = scheduler.schedule_with_probe(g, platform, model, probe);
    let construct = t0.elapsed();
    (sched, construct)
}

/// Which scheduler a sweep job runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedKind {
    /// One-port HEFT with the paper-faithful policy.
    Heft,
    /// ILHA with chunk size `b`.
    Ilha(usize),
}

impl SchedKind {
    /// Stable key used in CSVs, bench JSON, and baselines.
    pub fn key(self) -> &'static str {
        match self {
            SchedKind::Heft => "HEFT",
            SchedKind::Ilha(_) => "ILHA",
        }
    }

    /// Instantiate the scheduler.
    pub fn build(self) -> Box<dyn Scheduler> {
        match self {
            SchedKind::Heft => Box::new(Heft::new()),
            SchedKind::Ilha(b) => Box::new(Ilha::new(b)),
        }
    }
}

/// One unit of sweep work: schedule one testbed instance with one scheduler.
#[derive(Debug, Clone, Copy)]
pub struct SweepJob {
    /// Which testbed to generate.
    pub testbed: Testbed,
    /// Problem size `n`.
    pub size: usize,
    /// Which scheduler to run.
    pub sched: SchedKind,
}

/// The outcome of one [`SweepJob`].
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// The job this result answers.
    pub job: SweepJob,
    /// Number of tasks in the generated graph.
    pub tasks: usize,
    /// Schedule makespan.
    pub makespan: f64,
    /// Speedup over the fastest-single-processor sequential time.
    pub speedup: f64,
    /// Number of effective (non-zero duration) communications.
    pub effective_comms: usize,
    /// Wall-clock time of the `schedule()` call alone (graph generation and
    /// statistics excluded).
    pub construct: Duration,
}

/// The standard figure-sweep job list: for each testbed and size, one HEFT
/// job and one ILHA job (with the testbed's paper-best chunk size).
pub fn paper_jobs(testbeds: &[Testbed], sizes: &[usize]) -> Vec<SweepJob> {
    let mut jobs = Vec::with_capacity(testbeds.len() * sizes.len() * 2);
    for &tb in testbeds {
        for &n in sizes {
            for sched in [SchedKind::Heft, SchedKind::Ilha(tb.paper_best_b())] {
                jobs.push(SweepJob {
                    testbed: tb,
                    size: n,
                    sched,
                });
            }
        }
    }
    jobs
}

/// Default worker count: the machine's available parallelism.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Run every job on a scoped worker pool of `threads` workers and return the
/// results in job order. `threads == 1` degenerates to a serial run (useful
/// for clean construction-time measurements).
pub fn run_sweep(jobs: &[SweepJob], threads: usize, model: CommModel) -> Vec<SweepResult> {
    run_sweep_repeated(jobs, threads, model, 1)
}

/// [`run_sweep`] measuring each job's construction time as the minimum over
/// `repeats` runs — the robust estimator for perf gating on noisy (shared)
/// hardware. Schedules are deterministic, so quality numbers are unaffected.
pub fn run_sweep_repeated(
    jobs: &[SweepJob],
    threads: usize,
    model: CommModel,
    repeats: usize,
) -> Vec<SweepResult> {
    let platform = Platform::paper();
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<SweepResult>>> = jobs.iter().map(|_| Mutex::new(None)).collect();
    let workers = threads.clamp(1, jobs.len().max(1));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                // the atomic counter can exceed jobs.len(); .get() is both
                // the bounds check and the loop exit
                let Some((job, slot)) = jobs.get(i).zip(slots.get(i)) else {
                    break;
                };
                let r = run_job(job, &platform, model, repeats.max(1));
                let mut slot = slot.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
                *slot = Some(r);
            });
        }
    });
    // Every index was claimed by exactly one worker (the atomic counter hands
    // each out once and the scope joins before we get here), but a worker
    // that panicked mid-job leaves its slot empty — recompute such a job
    // serially rather than panicking the sweep.
    slots
        .into_iter()
        .zip(jobs)
        .map(|(m, job)| {
            m.into_inner()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .unwrap_or_else(|| run_job(job, &platform, model, repeats.max(1)))
        })
        .collect()
}

fn run_job(job: &SweepJob, platform: &Platform, model: CommModel, repeats: usize) -> SweepResult {
    let g = job.testbed.generate(job.size, PAPER_C);
    let scheduler = job.sched.build();
    let (sched, mut construct) = schedule_timed(&g, platform, scheduler.as_ref(), model);
    for _ in 1..repeats {
        let (again, t) = schedule_timed(&g, platform, scheduler.as_ref(), model);
        construct = construct.min(t);
        debug_assert!(again.makespan() == sched.makespan());
    }
    SweepResult {
        job: *job,
        tasks: g.num_tasks(),
        makespan: sched.makespan(),
        speedup: sched.speedup(&g, platform),
        effective_comms: sched.num_effective_comms(),
        construct,
    }
}

/// One record of the machine-readable perf trajectory (`BENCH_2.json`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchEntry {
    /// Testbed display name.
    pub testbed: String,
    /// Problem size `n`.
    pub size: usize,
    /// Scheduler key (`"HEFT"` / `"ILHA"`).
    pub scheduler: String,
    /// Number of tasks scheduled.
    pub tasks: usize,
    /// Schedule-construction wall-clock time, milliseconds.
    pub construct_ms: f64,
    /// Construction time of the recorded previous implementation (the seed
    /// at PR 2), carried over via `--bench-baseline`; `null` when unknown.
    pub seed_construct_ms: Option<f64>,
    /// Schedule makespan (quality cross-check).
    pub makespan: f64,
    /// Schedule speedup (quality cross-check).
    pub speedup: f64,
}

/// The bench JSON file: schema tag, run configuration, entries.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchFile {
    /// Format tag (`onesched-bench/v1`).
    pub schema: String,
    /// Worker threads the sweep ran with.
    pub threads: usize,
    /// Entries in job order.
    pub entries: Vec<BenchEntry>,
}

/// Schema tag written into bench JSON files.
pub const BENCH_SCHEMA: &str = "onesched-bench/v1";

impl BenchFile {
    /// Package sweep results as a bench file, optionally carrying over the
    /// matching construction times of `baseline` as `seed_construct_ms`.
    pub fn from_results(
        results: &[SweepResult],
        threads: usize,
        baseline: Option<&BenchFile>,
    ) -> BenchFile {
        let entries = results
            .iter()
            .map(|r| {
                let seed = baseline.and_then(|b| {
                    b.entries
                        .iter()
                        .find(|e| {
                            e.testbed == r.job.testbed.name()
                                && e.size == r.job.size
                                && e.scheduler == r.job.sched.key()
                        })
                        .map(|e| e.seed_construct_ms.unwrap_or(e.construct_ms))
                });
                BenchEntry {
                    testbed: r.job.testbed.name().to_string(),
                    size: r.job.size,
                    scheduler: r.job.sched.key().to_string(),
                    tasks: r.tasks,
                    construct_ms: r.construct.as_secs_f64() * 1e3,
                    seed_construct_ms: seed,
                    makespan: r.makespan,
                    speedup: r.speedup,
                }
            })
            .collect();
        BenchFile {
            schema: BENCH_SCHEMA.to_string(),
            threads,
            entries,
        }
    }
}

/// Compare a fresh bench run against a committed baseline: every matching
/// `(testbed, size, scheduler)` entry whose baseline construction time is at
/// least `floor_ms` must not exceed `max_ratio ×` the baseline. Returns the
/// offending descriptions (empty = pass).
pub fn bench_regressions(
    current: &BenchFile,
    baseline: &BenchFile,
    max_ratio: f64,
    floor_ms: f64,
) -> Vec<String> {
    let mut bad = Vec::new();
    for cur in &current.entries {
        let Some(base) = baseline.entries.iter().find(|e| {
            e.testbed == cur.testbed && e.size == cur.size && e.scheduler == cur.scheduler
        }) else {
            continue;
        };
        if base.construct_ms < floor_ms {
            continue; // sub-floor timings are scheduler-start noise
        }
        if cur.construct_ms > base.construct_ms * max_ratio {
            bad.push(format!(
                "{} n={} {}: {:.2} ms vs baseline {:.2} ms (> {max_ratio:.1}x)",
                cur.testbed, cur.size, cur.scheduler, cur.construct_ms, base.construct_ms
            ));
        }
    }
    bad
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_results_deterministic_and_in_job_order() {
        let jobs = paper_jobs(&[Testbed::Lu, Testbed::ForkJoin], &[10, 20]);
        assert_eq!(jobs.len(), 8);
        let serial = run_sweep(&jobs, 1, CommModel::OnePortBidir);
        let parallel = run_sweep(&jobs, 4, CommModel::OnePortBidir);
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.job.testbed, p.job.testbed);
            assert_eq!(s.job.size, p.job.size);
            assert_eq!(s.job.sched.key(), p.job.sched.key());
            assert_eq!(
                s.makespan, p.makespan,
                "parallelism must not change schedules"
            );
            assert_eq!(s.effective_comms, p.effective_comms);
        }
    }

    #[test]
    fn bench_file_roundtrip_and_compare() {
        let jobs = paper_jobs(&[Testbed::ForkJoin], &[10]);
        let results = run_sweep(&jobs, 2, CommModel::OnePortBidir);
        let file = BenchFile::from_results(&results, 2, None);
        let json = serde_json::to_string(&file).unwrap();
        let back: BenchFile = serde_json::from_str(&json).unwrap();
        assert_eq!(back.entries.len(), file.entries.len());
        assert_eq!(back.schema, BENCH_SCHEMA);
        // identical files never regress against each other
        assert!(bench_regressions(&back, &file, 2.0, 0.0).is_empty());
        // a 3x slowdown is flagged
        let mut slow = file.clone();
        for e in &mut slow.entries {
            e.construct_ms *= 3.0;
        }
        assert!(!bench_regressions(&slow, &file, 2.0, 0.0).is_empty());
    }

    #[test]
    fn baseline_times_carry_over() {
        let jobs = paper_jobs(&[Testbed::ForkJoin], &[10]);
        let results = run_sweep(&jobs, 1, CommModel::OnePortBidir);
        let mut seed = BenchFile::from_results(&results, 1, None);
        for e in &mut seed.entries {
            e.construct_ms = 42.0;
        }
        let merged = BenchFile::from_results(&results, 1, Some(&seed));
        assert!(merged
            .entries
            .iter()
            .all(|e| e.seed_construct_ms == Some(42.0)));
    }
}

//! Property tests for the write-ahead ledger: records round-trip bit-exact
//! through NDJSON, and recovery from a ledger truncated at *any* byte
//! offset — the on-disk state a `SIGKILL` mid-append leaves behind — never
//! panics and always yields exactly the records whose lines were fully
//! written.

use onesched_service::ledger::{
    key_hash, parse_ledger, Ledger, LedgerOutcome, LedgerRecord, LEDGER_SCHEMA,
};
use onesched_service::protocol::{DagSpec, JobSpec, SchedulerSpec, SimSpec};
use onesched_service::Testbed;
use proptest::prelude::*;

/// A deterministic job spec, varied by testbed and size.
fn spec(tb_ix: usize, n: usize) -> JobSpec {
    JobSpec {
        dag: DagSpec::testbed(Testbed::ALL[tb_ix % 6], 1 + n % 64),
        platform: None,
        scheduler: n.is_multiple_of(3).then(|| SchedulerSpec::ilha(1 + n % 16)),
        model: None,
        validate: n.is_multiple_of(2),
    }
}

/// Largest integer the JSON shim round-trips exactly (2^53 − 1).
const MAX_EXACT: u64 = 9_007_199_254_740_991;

/// Build one lifecycle record from sampled integers.
fn record(kind: usize, seq: u64, tb_ix: usize, n: usize, priority: i64) -> LedgerRecord {
    let id = format!("job-{seq}");
    let key = key_hash(&format!("spec-{tb_ix}-{n}"));
    match kind % 4 {
        0 => LedgerRecord::submitted(
            seq,
            &id,
            &key,
            priority,
            spec(tb_ix, n),
            n.is_multiple_of(4).then(|| SimSpec {
                seed: Some(seq % 1024),
                ..SimSpec::default()
            }),
        ),
        1 => LedgerRecord::started(seq, &id, &key),
        2 => LedgerRecord::done(
            seq,
            &id,
            &key,
            Some(LedgerOutcome {
                scheduler: format!("S{tb_ix}"),
                tasks: n,
                makespan: n as f64 * 1.5,
                speedup: 1.0 + (tb_ix as f64) / 7.0,
                effective_comms: n / 2,
                fingerprint: format!("{seq:016x}"),
                construct_ms: (n as f64) / 3.0,
                violations: 0,
                policy: None,
                seed: None,
                executed_makespan: None,
                degradation: None,
                trace_fingerprint: None,
                exec_ms: None,
                events: None,
            }),
            None,
        ),
        _ => LedgerRecord::failed(seq, &id, &key, format!("err {priority}")),
    }
}

/// The NDJSON serialization of a batch of records, plus per-line lengths.
#[allow(clippy::expect_used)] // test helper; callers are all #[test] fns
fn ndjson(records: &[LedgerRecord]) -> (Vec<u8>, Vec<usize>) {
    let mut bytes = Vec::new();
    let mut line_lens = Vec::new();
    for r in records {
        let line = serde_json::to_string(r).expect("ledger records always serialize");
        line_lens.push(line.len() + 1);
        bytes.extend_from_slice(line.as_bytes());
        bytes.push(b'\n');
    }
    (bytes, line_lens)
}

/// How many of `line_lens` fit entirely within a `cut`-byte prefix, and
/// the byte length of those full lines.
fn full_lines(line_lens: &[usize], cut: usize) -> (usize, usize) {
    let mut count = 0;
    let mut bytes = 0;
    for &len in line_lens {
        if bytes + len > cut {
            break;
        }
        bytes += len;
        count += 1;
    }
    (count, bytes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn records_round_trip(
        kind in 0usize..4,
        seq in 0u64..MAX_EXACT,
        tb_ix in 0usize..6,
        n in 0usize..1000,
        priority in -1_000i64..1_000,
    ) {
        let rec = record(kind, seq, tb_ix, n, priority);
        let line = serde_json::to_string(&rec).unwrap();
        prop_assert!(!line.contains('\n'), "one record per line");
        let back: LedgerRecord = serde_json::from_str(&line).unwrap();
        prop_assert_eq!(back, rec);
    }

    /// Truncating a valid ledger at every byte offset — every possible
    /// SIGKILL point — recovers exactly the fully-written lines: no panic,
    /// no lost record, no phantom record.
    #[test]
    fn truncation_at_any_offset_recovers_full_lines(
        kinds in proptest::collection::vec((0usize..4, 0usize..6, 0usize..100, -9i64..9), 1..6),
    ) {
        let records: Vec<LedgerRecord> = kinds
            .iter()
            .enumerate()
            .map(|(i, &(k, tb, n, p))| record(k, i as u64, tb, n, p))
            .collect();
        let (bytes, line_lens) = ndjson(&records);
        for cut in 0..=bytes.len() {
            let r = parse_ledger(&bytes[..cut]);
            let (count, valid) = full_lines(&line_lens, cut);
            prop_assert_eq!(r.records.len(), count, "cut at {}", cut);
            prop_assert_eq!(&r.records[..], &records[..count]);
            prop_assert_eq!(r.valid_bytes, valid as u64);
            prop_assert_eq!(r.torn, cut > valid, "cut {} valid {}", cut, valid);
        }
    }
}

/// The same every-offset sweep through the full [`Ledger::open`] path:
/// each truncated file opens cleanly, is physically truncated back to its
/// valid prefix, and accepts a fresh append that the next open replays.
#[test]
fn open_recovers_and_appends_at_every_truncation_offset() {
    let records: Vec<LedgerRecord> = (0..4)
        .map(|i| record(i, i as u64, i, 10 + i, i as i64))
        .collect();
    let (bytes, line_lens) = ndjson(&records);
    let mut path = std::env::temp_dir();
    path.push(format!(
        "onesched-ledger-proptest-{}.ndjson",
        std::process::id()
    ));
    for cut in 0..=bytes.len() {
        std::fs::write(&path, &bytes[..cut]).unwrap();
        let (count, valid) = full_lines(&line_lens, cut);
        let (mut ledger, replay) = Ledger::open(&path).unwrap();
        assert_eq!(replay.records.len(), count, "cut at {cut}");
        assert_eq!(replay.valid_bytes, valid as u64);
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            valid as u64,
            "torn tail physically truncated (cut {cut})"
        );
        let extra = LedgerRecord::started(99, "post-crash", &key_hash("extra"));
        ledger.append(&extra).unwrap();
        ledger.sync().unwrap();
        drop(ledger);
        let (_, after) = Ledger::open(&path).unwrap();
        assert!(!after.torn, "appended tail is clean (cut {cut})");
        assert_eq!(after.records.len(), count + 1);
        assert_eq!(after.records.last(), Some(&extra));
    }
    let _ = std::fs::remove_file(&path);
}

/// The schema tag rides every `submitted` record, so a future format can
/// recognize v1 logs.
#[test]
fn submitted_records_carry_schema_tag() {
    let rec = record(0, 5, 1, 8, 2);
    assert_eq!(rec.schema.as_deref(), Some(LEDGER_SCHEMA));
    let line = serde_json::to_string(&rec).unwrap();
    assert!(line.contains(LEDGER_SCHEMA));
}

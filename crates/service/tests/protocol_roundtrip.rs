//! Property tests: every protocol type round-trips bit-exactly through the
//! serde shim's JSON, and spec resolution is stable across the wire (a
//! resolved job re-parsed from its serialized spec resolves to the same
//! canonical key — the invariant the schedule cache stands on).

use onesched_service::protocol::{
    DagSpec, ErrorResponse, JobSpec, LatencyEntry, PlatformSpec, PortfolioWinEntry, Request,
    ResultResponse, SchedulerSpec, SimResultResponse, SimSpec, StatsResponse,
};
use proptest::prelude::*;

/// Build a string from sampled char indices over an alphabet that includes
/// JSON-escape-relevant characters (the proptest shim has no string
/// strategy).
fn name_from(ixs: &[usize]) -> String {
    const ALPHABET: [char; 16] = [
        'a', 'b', 'z', 'A', 'Z', '0', '9', '-', '_', '.', ' ', '"', '\\', '\n', '\t', 'π',
    ];
    ixs.iter().map(|&i| ALPHABET[i % ALPHABET.len()]).collect()
}

/// Largest integer the JSON shim round-trips exactly (2^53 − 1).
const MAX_EXACT: u64 = 9_007_199_254_740_991;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn requests_round_trip(
        op_ix in 0usize..4,
        id_ixs in proptest::collection::vec(0usize..16, 0..12),
        has_id in 0u8..2,
        priority in -1_000_000i64..1_000_000,
        has_priority in 0u8..2,
        dag_kind in 0usize..4,
        n in 1usize..500,
        layers in 1usize..50,
        width in 1usize..50,
        edge_prob in 0.0f64..1.0,
        seed in 0u64..MAX_EXACT,
        platform_ix in 0usize..7,
        procs in 1usize..64,
        sched_ix in 0usize..5,
        b in 1usize..100,
        model_ix in 0usize..5,
        validate in 0u8..2,
    ) {
        let dag = match dag_kind {
            0 => DagSpec::testbed(onesched_service::Testbed::ALL[n % 6], n),
            1 => DagSpec::random(layers, width, edge_prob, seed),
            2 => DagSpec::toy(),
            // a partially-filled spec (not necessarily valid — the wire
            // format must carry it regardless)
            _ => DagSpec { kind: name_from(&id_ixs), ..DagSpec::toy() },
        };
        let platform = match platform_ix {
            0 => None,
            1 => Some(PlatformSpec::paper()),
            2 => Some(PlatformSpec::routed("star", procs, 1.0)),
            3 => Some(PlatformSpec::routed("ring", procs, 2.5)),
            4 => Some(PlatformSpec::routed("line", procs, 0.5)),
            5 => Some(PlatformSpec::random_connected(procs, 1.0, 0.4, 7)),
            _ => Some(PlatformSpec {
                kind: "homogeneous".into(),
                procs: Some(procs),
                cycle_times: Some(vec![1.5; procs.min(4)]),
                link_time: None,
                links: None,
                extra_prob: None,
                seed: None,
            }),
        };
        let scheduler = match sched_ix {
            0 => None,
            1 => Some(SchedulerSpec::heft()),
            2 => Some(SchedulerSpec::ilha(b)),
            3 => Some(SchedulerSpec::routed_ilha()),
            _ => Some(SchedulerSpec::routed_heft()),
        };
        let model = ["macro-dataflow", "one-port-bidir", "one-port-unidir",
                     "one-port-no-overlap", "nonsense"]
            .get(model_ix).map(|m| m.to_string());
        let job = JobSpec { dag, platform, scheduler, model, validate: validate == 1 };
        let req = match op_ix {
            0 => Request::submit(
                (has_id == 1).then(|| name_from(&id_ixs)),
                priority,
                job.clone(),
            ),
            1 => Request::stats(),
            2 => Request::shutdown(),
            _ => Request {
                op: name_from(&id_ixs),
                id: (has_id == 1).then(|| name_from(&id_ixs)),
                priority: (has_priority == 1).then_some(priority),
                job: Some(job.clone()),
                sim: None,
            },
        };
        // simulate requests round-trip too, sim spec included
        let sim_req = Request::simulate(
            (has_id == 1).then(|| name_from(&id_ixs)),
            priority,
            job,
            SimSpec {
                policy: Some(["static-order", "list-dynamic"][n % 2].into()),
                seed: Some(seed),
                task_sigma: Some(edge_prob),
                bw_degradation: None,
                outage_prob: Some(edge_prob),
                outage_frac: None,
            },
        );
        let json = serde_json::to_string(&sim_req).unwrap();
        let back: Request = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back, sim_req);
        let json = serde_json::to_string(&req).unwrap();
        prop_assert!(!json.contains('\n'), "line protocol: one request per line");
        let back: Request = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back, req);
    }

    #[test]
    fn responses_round_trip(
        id_ixs in proptest::collection::vec(0usize..16, 0..10),
        tasks in 0usize..2_000_000,
        makespan in 0.0f64..1e12,
        speedup in 0.0f64..64.0,
        comms in 0usize..1_000_000,
        fingerprint in 0u64..MAX_EXACT,
        construct_ms in 0.0f64..1e7,
        cache_hit in 0u8..2,
        violations in 0usize..100,
        counters in (0u64..MAX_EXACT, 0u64..MAX_EXACT, 0u64..MAX_EXACT),
        depth in 0usize..10_000,
        lat in proptest::collection::vec((0.0f64..1e6, 0u64..1_000_000), 0..5),
    ) {
        let result = ResultResponse {
            op: "result".into(),
            id: name_from(&id_ixs),
            scheduler: "ILHA(B=38)".into(),
            model: "one-port-bidir".into(),
            tasks,
            makespan,
            speedup,
            effective_comms: comms,
            fingerprint: format!("{fingerprint:016x}"),
            construct_ms,
            cache_hit: cache_hit == 1,
            violations,
        };
        let back: ResultResponse = serde_json::from_str(&serde_json::to_string(&result).unwrap()).unwrap();
        prop_assert_eq!(back, result);

        let stats = StatsResponse {
            op: "stats".into(),
            queue_depth: depth,
            jobs_done: counters.0,
            sims_done: counters.1,
            cache_hits: counters.1,
            errors: counters.2,
            cache_size: depth,
            sim_cache_size: depth / 2,
            cache_evictions: counters.0,
            jobs_recovered: counters.1,
            jobs_retried: counters.2 % 7,
            jobs_timed_out: counters.0 % 5,
            jobs_shed: counters.1 % 3,
            ledger_bytes: counters.2,
            uptime_events: counters.0 % 1000,
            trace_events_dropped: counters.1 % 11,
            uptime_ms: construct_ms,
            latency: lat.iter().enumerate().map(|(i, &(ms, count))| LatencyEntry {
                scheduler: format!("S{i}"),
                count,
                window: count.min(256),
                p50_ms: ms,
                p90_ms: ms * 1.5,
                p99_ms: ms * 2.0,
                max_ms: ms * 3.0,
            }).collect(),
            portfolio: lat.iter().enumerate().map(|(i, &(_, count))| PortfolioWinEntry {
                scheduler: format!("s{i}"),
                wins: count,
            }).collect(),
        };
        let back: StatsResponse = serde_json::from_str(&serde_json::to_string(&stats).unwrap()).unwrap();
        prop_assert_eq!(back, stats);

        let err = ErrorResponse {
            op: "error".into(),
            id: (violations % 2 == 0).then(|| name_from(&id_ixs)),
            message: name_from(&id_ixs),
            kind: (violations % 3 == 0).then(|| "overloaded".to_string()),
            retry_after_ms: (violations % 3 == 0).then_some(construct_ms),
        };
        let back: ErrorResponse = serde_json::from_str(&serde_json::to_string(&err).unwrap()).unwrap();
        prop_assert_eq!(back, err);
        // pre-robustness error lines (no kind/retry_after_ms) still parse
        let legacy: ErrorResponse =
            serde_json::from_str(r#"{"op":"error","message":"queue full"}"#).unwrap();
        prop_assert_eq!(legacy.kind, None);

        let sim = SimResultResponse {
            op: "sim-result".into(),
            id: name_from(&id_ixs),
            scheduler: "HEFT".into(),
            model: "one-port-bidir".into(),
            policy: "list-dynamic".into(),
            seed: counters.0,
            tasks,
            static_makespan: makespan,
            executed_makespan: makespan * 1.25,
            degradation: 1.25,
            fingerprint: format!("{fingerprint:016x}"),
            trace_fingerprint: format!("{:016x}", fingerprint ^ 0xffff),
            construct_ms,
            exec_ms: construct_ms / 2.0,
            cache_hit: cache_hit == 1,
            violations,
        };
        let back: SimResultResponse = serde_json::from_str(&serde_json::to_string(&sim).unwrap()).unwrap();
        prop_assert_eq!(back, sim);
    }

    /// Resolution is stable across the wire: resolving a spec, shipping the
    /// normalized spec as JSON, and resolving it again lands on the same
    /// canonical key (so distributed submitters agree on cache identity).
    #[test]
    fn resolved_specs_are_wire_stable(
        tb_ix in 0usize..6,
        n in 1usize..120,
        sched_ix in 0usize..3,
        b in 1usize..100,
        model_ix in 0usize..4,
        validate in 0u8..2,
    ) {
        let job = JobSpec {
            dag: DagSpec::testbed(onesched_service::Testbed::ALL[tb_ix], n),
            platform: None,
            scheduler: match sched_ix {
                0 => None,
                1 => Some(SchedulerSpec::heft()),
                _ => Some(SchedulerSpec::ilha(b)),
            },
            model: ["macro-dataflow", "one-port-bidir", "one-port-unidir",
                    "one-port-no-overlap"].get(model_ix).map(|m| m.to_string()),
            validate: validate == 1,
        };
        let resolved = job.resolve().unwrap();
        let shipped: JobSpec = serde_json::from_str(&serde_json::to_string(&resolved.spec).unwrap()).unwrap();
        let again = shipped.resolve().unwrap();
        prop_assert_eq!(&resolved.key, &again.key);
        prop_assert_eq!(resolved.spec, again.spec);
    }

    /// Sim specs are wire-stable too: the resolved (fully defaulted) spec
    /// re-resolves to the same sim-cache key suffix.
    #[test]
    fn resolved_sim_specs_are_wire_stable(
        policy_ix in 0usize..2,
        seed in 0u64..MAX_EXACT,
        sigma in 0.0f64..2.0,
        beta in 0.0f64..2.0,
        prob in 0.0f64..1.0,
        frac in 0.0f64..1.0,
        sparse in 0u8..2,
    ) {
        let spec = if sparse == 1 {
            SimSpec { seed: Some(seed), ..SimSpec::default() }
        } else {
            SimSpec {
                policy: Some(["static-order", "list-dynamic"][policy_ix].into()),
                seed: Some(seed),
                task_sigma: Some(sigma),
                bw_degradation: Some(beta),
                outage_prob: Some(prob),
                outage_frac: Some(frac),
            }
        };
        let resolved = spec.resolve().unwrap();
        let shipped: SimSpec = serde_json::from_str(&serde_json::to_string(&resolved.spec).unwrap()).unwrap();
        let again = shipped.resolve().unwrap();
        prop_assert_eq!(&resolved.key, &again.key);
        prop_assert_eq!(resolved.policy(), again.policy());
    }
}

//! End-to-end tracing integration: a daemon run with `--trace` produces a
//! span tree that accounts for every job, bit-identical results to an
//! untraced run, and a metrics exposition that reconciles with `stats`.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)] // test code

use onesched_service::protocol::{DagSpec, JobSpec, OpProbe, Request, SchedulerSpec, SimSpec};
use onesched_service::service::SharedWriter;
use onesched_service::{Service, ServiceConfig, Testbed};
use onesched_trace::{parse_trace, TraceEvent};
use std::collections::{BTreeMap, BTreeSet};
use std::io::{Cursor, Write};
use std::sync::{Arc, Mutex};

/// A `Write` sink whose bytes the test can read back after the batch.
#[derive(Clone, Default)]
struct Capture(Arc<Mutex<Vec<u8>>>);

impl Write for Capture {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn job(tb: Testbed, n: usize, scheduler: Option<SchedulerSpec>) -> JobSpec {
    JobSpec {
        dag: DagSpec::testbed(tb, n),
        platform: None,
        scheduler,
        model: None,
        validate: false,
    }
}

/// A small mixed workload: plain submits under both schedulers, a
/// cache-hit duplicate, and a simulation (which adds an `execute` span).
fn workload() -> Vec<Request> {
    vec![
        Request::submit(Some("trace-lu".into()), 0, job(Testbed::Lu, 12, None)),
        Request::submit(
            Some("trace-lap".into()),
            0,
            job(Testbed::Laplace, 12, Some(SchedulerSpec::ilha(4))),
        ),
        Request::submit(Some("trace-st".into()), 0, job(Testbed::Stencil, 12, None)),
        // duplicate of the first job: a cache hit (no construct span)
        Request::submit(Some("trace-dup".into()), 0, job(Testbed::Lu, 12, None)),
        Request::simulate(
            Some("trace-sim".into()),
            0,
            job(Testbed::Lu, 10, None),
            SimSpec {
                seed: Some(7),
                ..SimSpec::default()
            },
        ),
    ]
}

/// Run one batch session over `requests`, optionally traced. Returns the
/// service (quiescent, for follow-up control requests) and the response
/// lines minus the `ready` announcement.
fn run_batch(requests: &[Request], trace: Option<&std::path::Path>) -> (Service, Vec<String>) {
    let cfg = ServiceConfig {
        // one worker: the duplicate job must dequeue strictly after its
        // original finishes, so the cache hit/miss accounting these tests
        // pin is deterministic (two workers may legitimately race the
        // same key and both construct — see the README's cache semantics)
        workers: 1,
        trace: trace.map(|p| p.to_path_buf()),
        ..ServiceConfig::default()
    };
    let svc = Service::new(cfg);
    let input = requests
        .iter()
        .map(|r| serde_json::to_string(r).expect("serialize request"))
        .collect::<Vec<_>>()
        .join("\n");
    let sink = Capture::default();
    let out: SharedWriter = Arc::new(Mutex::new(Box::new(sink.clone())));
    svc.serve_batch(Cursor::new(input), &out, "test");
    let bytes = sink.0.lock().unwrap().clone();
    let lines = String::from_utf8(bytes)
        .expect("utf8 responses")
        .lines()
        .filter(|l| serde_json::from_str::<OpProbe>(l).is_ok_and(|p| p.op != "ready"))
        .map(str::to_string)
        .collect();
    (svc, lines)
}

/// Answer one control request on a quiescent service.
fn control(svc: &Service, req: &Request) -> serde::Value {
    let sink = Capture::default();
    let out: SharedWriter = Arc::new(Mutex::new(Box::new(sink.clone())));
    svc.handle_line(&serde_json::to_string(req).unwrap(), &out);
    let bytes = sink.0.lock().unwrap().clone();
    serde_json::from_str(String::from_utf8(bytes).unwrap().trim()).unwrap()
}

/// Fingerprints of every result line, keyed by job id.
fn fingerprints(lines: &[String]) -> BTreeMap<String, String> {
    let mut out = BTreeMap::new();
    for l in lines {
        let v: serde::Value = serde_json::from_str(l).unwrap();
        if let (Some(id), Some(fp)) = (
            v.get_field("id").ok().and_then(|x| x.as_str().ok()),
            v.get_field("fingerprint")
                .ok()
                .and_then(|x| x.as_str().ok()),
        ) {
            out.insert(id.to_string(), fp.to_string());
        }
    }
    out
}

#[test]
fn traced_run_is_bit_identical_and_accounts_every_job() {
    let trace_path =
        std::env::temp_dir().join(format!("onesched-trace-test-{}.ndjson", std::process::id()));
    let _ = std::fs::remove_file(&trace_path);

    let reqs = workload();
    let (_, plain) = run_batch(&reqs, None);
    let (_, traced) = run_batch(&reqs, Some(&trace_path));

    // Tracing never changes results: same responses, bit-identical
    // fingerprints, job by job.
    let fp_plain = fingerprints(&plain);
    let fp_traced = fingerprints(&traced);
    assert_eq!(fp_plain.len(), reqs.len(), "every job answered");
    assert_eq!(fp_plain, fp_traced, "tracing must not perturb schedules");

    let bytes = std::fs::read(&trace_path).expect("trace file written");
    let replay = parse_trace(&bytes);
    assert!(!replay.torn, "clean shutdown flushes whole lines");
    assert!(!replay.events.is_empty());
    for ev in &replay.events {
        ev.validate().expect("every emitted event validates");
    }

    // Every answered job has exactly one root `job` span with ok=1.
    let roots: Vec<&TraceEvent> = replay.events.iter().filter(|e| e.name == "job").collect();
    assert_eq!(roots.len(), reqs.len(), "one root span per job");
    let root_ids: BTreeSet<&str> = roots.iter().filter_map(|e| e.id.as_deref()).collect();
    for r in &reqs {
        let id = r.id.as_deref().unwrap();
        assert!(root_ids.contains(id), "job {id} missing a root span");
    }
    for root in &roots {
        assert_eq!(root.field_value("ok"), Some(1.0));
    }

    // Parent links resolve by name within each (seq, attempt) scope, and
    // children lie within their parent's [start, start+dur] window.
    let mut by_scope: BTreeMap<(u64, u64), Vec<&TraceEvent>> = BTreeMap::new();
    for ev in &replay.events {
        if ev.kind == "span" {
            by_scope
                .entry((ev.seq.unwrap(), ev.attempt.unwrap()))
                .or_default()
                .push(ev);
        }
    }
    for (scope, spans) in &by_scope {
        let names: BTreeSet<&str> = spans.iter().map(|e| e.name.as_str()).collect();
        for ev in spans {
            let Some(parent) = ev.parent.as_deref() else {
                assert_eq!(ev.name, "job", "only the root span has no parent");
                continue;
            };
            assert!(
                names.contains(parent),
                "span {} in scope {scope:?} links to missing parent {parent}",
                ev.name
            );
            let p = spans.iter().find(|e| e.name == parent).unwrap();
            let (ps, pd) = (p.start_us.unwrap(), p.dur_us.unwrap());
            let (cs, cd) = (ev.start_us.unwrap(), ev.dur_us.unwrap());
            assert!(
                cs >= ps && cs + cd <= ps + pd,
                "span {} [{cs}, {}] escapes parent {parent} [{ps}, {}]",
                ev.name,
                cs + cd,
                ps + pd
            );
        }
    }

    // The cache-hit duplicate has no construct span; cache misses do,
    // with all four phase children present.
    let constructs: Vec<&TraceEvent> = replay
        .events
        .iter()
        .filter(|e| e.name == "construct")
        .collect();
    assert_eq!(constructs.len(), 4, "4 misses (3 plain + 1 sim), 1 hit");
    assert!(!constructs
        .iter()
        .any(|e| e.id.as_deref() == Some("trace-dup")));
    for phase in ["rank", "step1", "scan", "commit"] {
        assert_eq!(
            replay
                .events
                .iter()
                .filter(|e| e.name == format!("construct.{phase}"))
                .count(),
            4,
            "phase {phase} under every construct"
        );
    }

    // The scan spans carry live prune counters: candidates dominate
    // prunes, and the bounds actually prune something on these testbeds.
    let scans: Vec<&TraceEvent> = replay
        .events
        .iter()
        .filter(|e| e.name == "construct.scan")
        .collect();
    let candidates: f64 = scans
        .iter()
        .filter_map(|e| e.field_value("candidates"))
        .sum();
    let pruned: f64 = scans
        .iter()
        .filter_map(|e| Some(e.field_value("pruned_bound")? + e.field_value("pruned_contention")?))
        .sum();
    assert!(candidates > pruned, "candidates dominate prunes");
    assert!(pruned > 0.0, "bounds prune something on these testbeds");

    // The simulation has an execute span with a positive events field.
    let execs: Vec<&TraceEvent> = replay
        .events
        .iter()
        .filter(|e| e.name == "execute")
        .collect();
    assert_eq!(execs.len(), 1);
    assert_eq!(execs[0].id.as_deref(), Some("trace-sim"));
    assert!(execs[0].field_value("events").unwrap() > 0.0);

    let _ = std::fs::remove_file(&trace_path);
}

#[test]
fn trace_report_reconciles_with_job_roots_on_a_real_run() {
    let trace_path = std::env::temp_dir().join(format!(
        "onesched-trace-report-{}.ndjson",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&trace_path);
    let reqs = workload();
    let (_, lines) = run_batch(&reqs, Some(&trace_path));
    assert_eq!(lines.len(), reqs.len());

    let bytes = std::fs::read(&trace_path).expect("trace file written");
    let replay = parse_trace(&bytes);
    let report = onesched_trace::build_report(&replay);
    assert!(!report.torn);
    assert_eq!(report.jobs.len(), reqs.len(), "one profile per job");
    assert_eq!(report.unscoped_spans, 0, "every span is job-scoped");

    // Per-job reconciliation: the span tree's self-times sum back to the
    // `job` root span exactly — no time invented, none dropped.
    for job in &report.jobs {
        let root = job.job_root().expect("every job has a root span");
        let root_dur = job.spans.get(root).map(|s| s.dur_us).unwrap_or(0);
        assert_eq!(
            job.self_total_us(),
            root_dur,
            "seq {} ({}): self-times must sum to the job root",
            job.seq,
            job.id
        );
        let path = job.critical_path();
        assert!(!path.is_empty());
        assert_eq!(path.first().copied(), Some(root), "path starts at the root");
    }

    // Aggregates carry the alloc fields on every construct phase (zero
    // without the profiling allocator, but always present), and the
    // phases the paper names all appear.
    for phase in [
        "construct.rank",
        "construct.step1",
        "construct.scan",
        "construct.commit",
    ] {
        let agg = report
            .aggregates
            .iter()
            .find(|a| a.name == phase)
            .unwrap_or_else(|| panic!("phase {phase} missing from aggregates"));
        assert_eq!(agg.count, 4, "{phase}: one per cache miss");
    }

    // The rendered report and flamegraph both cover the run: every phase
    // name appears, and the SVG has one frame per folded path plus "all".
    let rendered = onesched_trace::render_report(&report, 10);
    assert!(rendered.contains("construct.scan"));
    assert!(rendered.contains(&format!("jobs {} (reconciled {})", reqs.len(), reqs.len())));
    let folded = onesched_trace::fold_jobs(&report.jobs);
    assert!(!folded.is_empty());
    let svg = onesched_trace::flamegraph_svg(&folded);
    assert!(svg.matches("<g>").count() > folded.len(), "frames rendered");

    let _ = std::fs::remove_file(&trace_path);
}

#[test]
fn metrics_endpoint_reconciles_with_stats() {
    let (svc, lines) = run_batch(&workload(), None);
    assert_eq!(lines.len(), workload().len());

    // Both control requests hit the same quiescent ServiceStats, so the
    // exposition's counters must agree with the stats op exactly.
    let stats = control(&svc, &Request::stats());
    let metrics = control(&svc, &Request::metrics());
    assert_eq!(
        metrics.get_field("op").ok().and_then(|v| v.as_str().ok()),
        Some("metrics")
    );
    assert_eq!(
        metrics
            .get_field("content_type")
            .ok()
            .and_then(|v| v.as_str().ok()),
        Some("text/plain; version=0.0.4")
    );
    let text = metrics.get_field("text").unwrap().as_str().unwrap();

    let sample = |name: &str| -> f64 {
        text.lines()
            .find(|l| l.starts_with(name) && l.split_whitespace().count() == 2)
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("sample {name} missing from:\n{text}"))
    };
    let stat = |key: &str| -> f64 { stats.get_field(key).unwrap().as_num().unwrap() };
    assert_eq!(
        sample("onesched_jobs_total{outcome=\"done\"}"),
        stat("jobs_done")
    );
    assert_eq!(sample("onesched_sims_total"), stat("sims_done"));
    assert_eq!(sample("onesched_cache_hits_total"), stat("cache_hits"));
    assert_eq!(
        sample("onesched_jobs_total{outcome=\"error\"}"),
        stat("errors")
    );
    assert_eq!(sample("onesched_cache_size"), stat("cache_size"));
    assert_eq!(sample("onesched_queue_depth"), stat("queue_depth"));
    assert_eq!(stat("jobs_done"), 5.0);
    assert_eq!(stat("cache_hits"), 1.0);

    // Histograms observed one sample per queue wait / construct, and the
    // scan-disposition counters saw real placement work.
    assert_eq!(sample("onesched_queue_wait_ms_count"), 5.0);
    assert_eq!(sample("onesched_construct_ms_count"), 4.0);
    let considered = sample("onesched_placement_candidates_total{disposition=\"considered\"}");
    assert!(considered > 0.0, "placement scans were counted");
}

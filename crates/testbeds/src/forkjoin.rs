//! Fork and fork-join graphs.

use onesched_dag::{TaskGraph, TaskGraphBuilder};

/// A fork graph: one parent `v0` and `n` children (the paper's Figure 2,
/// and — with `n = 6`, unit weights and `data = 1` — Figure 1).
///
/// `weights[0]` is the parent weight, `weights[1..]` the children; `data[i]`
/// is the volume sent to child `i`. This is the NP-completeness gadget of
/// §3, so weights and volumes are fully explicit rather than derived from a
/// `c` ratio.
pub fn fork(parent_weight: f64, children: &[(f64, f64)]) -> TaskGraph {
    let mut b = TaskGraphBuilder::with_capacity(children.len() + 1, children.len());
    let v0 = b.add_task(parent_weight);
    for &(w, d) in children {
        let c = b.add_task(w);
        b.add_edge(v0, c, d).unwrap();
    }
    b.build().expect("forks are acyclic")
}

/// The FORK-JOIN testbed at problem size `n` (Figure 7 workload): a source
/// task fans out to `n` independent intermediate tasks which join into a
/// sink. All weights 1 (§5.2); every edge carries `c × w(src) = c` items.
///
/// §5.3 analyses this testbed: reaching speedup `s` requires
/// `(s−1)/s × n` communications, bounding the speedup by `w·t/c + 1`
/// (= 1.6 on the paper platform with `c = 10`).
pub fn fork_join(n: usize, c: f64) -> TaskGraph {
    let mut b = TaskGraphBuilder::with_capacity(n + 2, 2 * n);
    let source = b.add_task(1.0);
    let sink_id = n as u32 + 1;
    let mut mids = Vec::with_capacity(n);
    for _ in 0..n {
        let m = b.add_task(1.0);
        b.add_edge(source, m, c).unwrap();
        mids.push(m);
    }
    let sink = b.add_task(1.0);
    debug_assert_eq!(sink.0, sink_id);
    for m in mids {
        b.add_edge(m, sink, c).unwrap();
    }
    b.build().expect("fork-joins are acyclic")
}

#[cfg(test)]
mod tests {
    use super::*;
    use onesched_dag::{IsoLevels, TaskId};

    #[test]
    fn figure1_fork() {
        let g = fork(1.0, &[(1.0, 1.0); 6]);
        assert_eq!(g.num_tasks(), 7);
        assert_eq!(g.num_edges(), 6);
        assert_eq!(g.out_degree(TaskId(0)), 6);
        assert!(g.weights().iter().all(|&w| w == 1.0));
    }

    #[test]
    fn heterogeneous_fork_weights() {
        let g = fork(0.0, &[(3.0, 3.0), (5.0, 5.0)]);
        assert_eq!(g.weight(TaskId(0)), 0.0);
        assert_eq!(g.weight(TaskId(1)), 3.0);
        let e = g.out_edges(TaskId(0))[1];
        assert_eq!(g.data(e), 5.0);
    }

    #[test]
    fn fork_join_shape() {
        let g = fork_join(10, 10.0);
        assert_eq!(g.num_tasks(), 12);
        assert_eq!(g.num_edges(), 20);
        let lv = IsoLevels::new(&g);
        assert_eq!(lv.num_levels(), 3);
        assert_eq!(lv.width(), 10);
        assert_eq!(g.entry_tasks().len(), 1);
        assert_eq!(g.exit_tasks().len(), 1);
    }

    #[test]
    fn fork_join_degenerate() {
        let g = fork_join(0, 10.0);
        assert_eq!(g.num_tasks(), 2, "source and sink only");
        assert_eq!(g.num_edges(), 0);
    }
}

//! The toy example of §4.4 (Figure 3).

use onesched_dag::{TaskGraph, TaskGraphBuilder, TaskId};

/// The §4.4 toy graph used to contrast HEFT and ILHA (Figure 3): two roots
/// `a0` and `b0`; `a1..a3` depend on `a0` only, `b1..b3` on `b0` only, and
/// `ab1`, `ab2` on both. All computation and communication costs are 1.
///
/// Task ids: `a0 = 0`, `b0 = 1`, `a1..a3 = 2..4`, `b1..b3 = 5..7`,
/// `ab1 = 8`, `ab2 = 9`.
pub fn toy() -> TaskGraph {
    let mut b = TaskGraphBuilder::with_capacity(10, 10);
    let a0 = b.add_task(1.0);
    let b0 = b.add_task(1.0);
    for _ in 0..3 {
        let c = b.add_task(1.0);
        b.add_edge(a0, c, 1.0).unwrap();
    }
    for _ in 0..3 {
        let c = b.add_task(1.0);
        b.add_edge(b0, c, 1.0).unwrap();
    }
    for _ in 0..2 {
        let c = b.add_task(1.0);
        b.add_edge(a0, c, 1.0).unwrap();
        b.add_edge(b0, c, 1.0).unwrap();
    }
    b.build().expect("the toy graph is acyclic")
}

/// Convenience ids for the toy graph's named nodes.
#[allow(missing_docs)]
pub mod toy_ids {
    use super::TaskId;
    pub const A0: TaskId = TaskId(0);
    pub const B0: TaskId = TaskId(1);
    pub const A: [TaskId; 3] = [TaskId(2), TaskId(3), TaskId(4)];
    pub const B: [TaskId; 3] = [TaskId(5), TaskId(6), TaskId(7)];
    pub const AB: [TaskId; 2] = [TaskId(8), TaskId(9)];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toy_shape() {
        let g = toy();
        assert_eq!(g.num_tasks(), 10);
        assert_eq!(g.num_edges(), 10);
        assert_eq!(g.out_degree(toy_ids::A0), 5);
        assert_eq!(g.out_degree(toy_ids::B0), 5);
        for t in toy_ids::AB {
            assert_eq!(g.in_degree(t), 2);
        }
        for t in toy_ids::A.iter().chain(toy_ids::B.iter()) {
            assert_eq!(g.in_degree(*t), 1);
        }
    }
}

//! # onesched-testbeds — the six classical task-graph kernels of §5
//!
//! Generators for the testbeds used in the paper's evaluation —
//! LU, LAPLACE, STENCIL, FORK-JOIN, DOOLITTLE, LDMt — plus the worked
//! examples (the Figure 1 fork, the §4.4 toy graph) and random layered DAGs
//! for property-based testing.
//!
//! ## Weight and communication rules (§5.2)
//!
//! * LAPLACE, STENCIL, FORK-JOIN: all task weights are 1.
//! * LU: a task at elimination step `k` (0-based) has weight `n − k`.
//! * DOOLITTLE and LDMt: a task at step `k` (1-based) has weight `k`.
//! * Every edge carries `data(u, v) = c × w(u)` — "we always communicate the
//!   data that has just been updated" — where `c` is the
//!   communication-to-computation ratio of the platform (the paper uses
//!   `c = 10`, "representative of workstations linked with a slow (Ethernet)
//!   network").
//!
//! The paper shows the graph shapes only as miniature raster figures; the
//! shapes here are reconstructed from the standard elimination-DAG
//! literature the paper cites (see DESIGN.md, "Substitutions").

#![warn(missing_docs)]
// Burn-down: pre-existing unwrap/expect/panic sites are grandfathered
// here and tracked per (file, lint) by `onesched-analyze` via the committed
// analyze-baseline.json; new code must use typed errors instead. Remove
// this allow once the crate's P-lint counts reach zero. See ANALYSIS.md.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
#![forbid(unsafe_code)]

mod elimination;
mod forkjoin;
mod grids;
mod random;
mod toy;

pub use elimination::{doolittle, ldmt, lu};
pub use forkjoin::{fork, fork_join};
pub use grids::{laplace, stencil};
pub use random::{random_layered, RandomDagConfig};
pub use toy::{toy, toy_ids};

use onesched_dag::TaskGraph;

/// The paper's default communication-to-computation ratio (§5.2).
pub const PAPER_C: f64 = 10.0;

/// The six testbeds of the evaluation section, as an enumerable set for
/// experiment harnesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Testbed {
    /// LU decomposition (Figure 8).
    Lu,
    /// Laplace equation solver — 2-D wavefront (Figure 9).
    Laplace,
    /// Iterated 1-D stencil (Figure 12).
    Stencil,
    /// Fork-join graph (Figure 7).
    ForkJoin,
    /// Doolittle reduction (Figure 11).
    Doolittle,
    /// LDMt decomposition (Figure 10).
    Ldmt,
}

impl Testbed {
    /// All six testbeds, in the paper's presentation order.
    pub const ALL: [Testbed; 6] = [
        Testbed::Lu,
        Testbed::Laplace,
        Testbed::Stencil,
        Testbed::ForkJoin,
        Testbed::Doolittle,
        Testbed::Ldmt,
    ];

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            Testbed::Lu => "LU",
            Testbed::Laplace => "LAPLACE",
            Testbed::Stencil => "STENCIL",
            Testbed::ForkJoin => "FORK-JOIN",
            Testbed::Doolittle => "DOOLITTLE",
            Testbed::Ldmt => "LDMt",
        }
    }

    /// Generate the testbed at problem size `n` with
    /// communication-to-computation ratio `c`.
    pub fn generate(self, n: usize, c: f64) -> TaskGraph {
        match self {
            Testbed::Lu => lu(n, c),
            Testbed::Laplace => laplace(n, c),
            Testbed::Stencil => stencil(n, c),
            Testbed::ForkJoin => fork_join(n, c),
            Testbed::Doolittle => doolittle(n, c),
            Testbed::Ldmt => ldmt(n, c),
        }
    }

    /// The experimentally best ILHA chunk size `B` reported in §5.3 for the
    /// 10-processor paper platform.
    pub fn paper_best_b(self) -> usize {
        match self {
            Testbed::Lu => 4,
            Testbed::Laplace => 38,
            Testbed::Stencil => 38,
            Testbed::ForkJoin => 38,
            Testbed::Doolittle => 20,
            Testbed::Ldmt => 20,
        }
    }

    /// The figure of the paper this testbed's size sweep reproduces.
    pub fn figure(self) -> u32 {
        match self {
            Testbed::ForkJoin => 7,
            Testbed::Lu => 8,
            Testbed::Laplace => 9,
            Testbed::Ldmt => 10,
            Testbed::Doolittle => 11,
            Testbed::Stencil => 12,
        }
    }
}

impl std::fmt::Display for Testbed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_testbeds_generate_valid_dags() {
        for tb in Testbed::ALL {
            let g = tb.generate(8, PAPER_C);
            assert!(g.num_tasks() > 0, "{tb}");
            assert!(g.num_edges() > 0, "{tb}");
        }
    }

    #[test]
    fn figures_and_bs_match_paper() {
        assert_eq!(Testbed::Lu.paper_best_b(), 4);
        assert_eq!(Testbed::Laplace.figure(), 9);
        let figs: std::collections::HashSet<u32> =
            Testbed::ALL.iter().map(|t| t.figure()).collect();
        assert_eq!(figs, (7..=12).collect());
    }

    #[test]
    fn comm_rule_data_is_c_times_source_weight() {
        for tb in Testbed::ALL {
            let g = tb.generate(6, PAPER_C);
            for e in g.edges() {
                let w = g.weight(e.src);
                assert!(
                    (e.data - PAPER_C * w).abs() < 1e-12,
                    "{tb}: edge data {} != c * w(src) = {}",
                    e.data,
                    PAPER_C * w
                );
            }
        }
    }
}

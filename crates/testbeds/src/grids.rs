//! Grid-shaped kernels: LAPLACE (2-D wavefront) and STENCIL (iterated 1-D
//! stencil).

use onesched_dag::{TaskGraph, TaskGraphBuilder, TaskId};

/// LAPLACE equation solver task graph (Figure 9 workload): the classical
/// 2-D wavefront over an `n × n` grid. Task `(i, j)` updates one grid point
/// and depends on its north neighbour `(i−1, j)` and west neighbour
/// `(i, j−1)`. All weights are 1 (§5.2); every edge carries `c` data items.
///
/// Every node sits on a critical path (all paths from `(0,0)` to
/// `(n−1,n−1)` have the same length), which is why the paper uses the
/// perfect-balance chunk `B = 38` here.
pub fn laplace(n: usize, c: f64) -> TaskGraph {
    let mut b = TaskGraphBuilder::with_capacity(n * n, 2 * n * n);
    let id = |i: usize, j: usize| TaskId((i * n + j) as u32);
    b.add_tasks(n * n, 1.0);
    for i in 0..n {
        for j in 0..n {
            if i > 0 {
                b.add_edge(id(i - 1, j), id(i, j), c).unwrap();
            }
            if j > 0 {
                b.add_edge(id(i, j - 1), id(i, j), c).unwrap();
            }
        }
    }
    b.build().expect("grid graphs are acyclic")
}

/// Iterated 1-D stencil task graph (Figure 12 workload): `n` rows of `n`
/// tasks; task `(r, j)` depends on `(r−1, j−1)`, `(r−1, j)` and
/// `(r−1, j+1)` (3-point stencil, truncated at the boundary). All weights 1;
/// every edge carries `c` data items.
///
/// Each row must be spread over all processors, so boundary tasks import up
/// to three remote values per row — under the one-port model those messages
/// serialize, which is why the paper observes the speedup *decreasing* with
/// problem size (§5.3).
pub fn stencil(n: usize, c: f64) -> TaskGraph {
    let mut b = TaskGraphBuilder::with_capacity(n * n, 3 * n * n);
    let id = |r: usize, j: usize| TaskId((r * n + j) as u32);
    b.add_tasks(n * n, 1.0);
    for r in 1..n {
        for j in 0..n {
            let lo = j.saturating_sub(1);
            let hi = (j + 1).min(n - 1);
            for k in lo..=hi {
                b.add_edge(id(r - 1, k), id(r, j), c).unwrap();
            }
        }
    }
    b.build().expect("stencil graphs are acyclic")
}

#[cfg(test)]
mod tests {
    use super::*;
    use onesched_dag::IsoLevels;

    #[test]
    fn laplace_counts() {
        let g = laplace(4, 10.0);
        assert_eq!(g.num_tasks(), 16);
        // edges: 2 n (n-1) = 24
        assert_eq!(g.num_edges(), 24);
        assert_eq!(g.entry_tasks().len(), 1);
        assert_eq!(g.exit_tasks().len(), 1);
    }

    #[test]
    fn laplace_is_wavefront() {
        let g = laplace(4, 10.0);
        let lv = IsoLevels::new(&g);
        // anti-diagonals: 2n - 1 levels, widest has n tasks
        assert_eq!(lv.num_levels(), 7);
        assert_eq!(lv.width(), 4);
    }

    #[test]
    fn stencil_counts() {
        let g = stencil(4, 10.0);
        assert_eq!(g.num_tasks(), 16);
        // per row r>0: interior tasks have 3 preds, 2 boundary tasks have 2
        // edges per row = 3*2 + 2*2 = 10; 3 rows -> 30
        assert_eq!(g.num_edges(), 30);
    }

    #[test]
    fn stencil_levels_are_rows() {
        let g = stencil(5, 10.0);
        let lv = IsoLevels::new(&g);
        assert_eq!(lv.num_levels(), 5);
        assert_eq!(lv.width(), 5);
        for l in 0..5 {
            assert_eq!(lv.tasks_at(l).len(), 5);
        }
    }

    #[test]
    fn unit_weights_everywhere() {
        for g in [laplace(6, 10.0), stencil(6, 10.0)] {
            assert!(g.weights().iter().all(|&w| w == 1.0));
            for e in g.edges() {
                assert_eq!(e.data, 10.0);
            }
        }
    }

    #[test]
    fn degenerate_sizes() {
        assert_eq!(laplace(0, 10.0).num_tasks(), 0);
        assert_eq!(laplace(1, 10.0).num_tasks(), 1);
        assert_eq!(stencil(1, 10.0).num_tasks(), 1);
        assert_eq!(stencil(1, 10.0).num_edges(), 0);
    }
}

//! Random layered DAGs for property-based testing and robustness studies.

use onesched_dag::{TaskGraph, TaskGraphBuilder, TaskId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters for [`random_layered`].
#[derive(Debug, Clone)]
pub struct RandomDagConfig {
    /// Number of layers (depth).
    pub layers: usize,
    /// Maximum tasks per layer (actual count is 1..=max, uniform).
    pub max_width: usize,
    /// Probability of an edge between a task and each task of the previous
    /// layer (at least one incoming edge is forced for non-entry layers so
    /// the depth is exactly `layers`).
    pub edge_prob: f64,
    /// Task weights drawn uniformly from this inclusive range.
    pub weight_range: (f64, f64),
    /// Edge data volumes drawn uniformly from this inclusive range.
    pub data_range: (f64, f64),
}

impl Default for RandomDagConfig {
    fn default() -> Self {
        RandomDagConfig {
            layers: 6,
            max_width: 8,
            edge_prob: 0.3,
            weight_range: (1.0, 10.0),
            data_range: (0.0, 20.0),
        }
    }
}

/// Generate a random layered DAG: tasks grouped into layers, edges only
/// between consecutive layers. Deterministic for a given `seed`.
pub fn random_layered(cfg: &RandomDagConfig, seed: u64) -> TaskGraph {
    assert!(cfg.layers >= 1 && cfg.max_width >= 1, "degenerate config");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = TaskGraphBuilder::new();
    let mut prev: Vec<TaskId> = Vec::new();
    for layer in 0..cfg.layers {
        let width = rng.gen_range(1..=cfg.max_width);
        let mut cur = Vec::with_capacity(width);
        for _ in 0..width {
            let w = rng.gen_range(cfg.weight_range.0..=cfg.weight_range.1);
            let t = b.add_task(w);
            if layer > 0 {
                let mut any = false;
                for &p in &prev {
                    if rng.gen_bool(cfg.edge_prob) {
                        let d = rng.gen_range(cfg.data_range.0..=cfg.data_range.1);
                        b.add_edge(p, t, d).unwrap();
                        any = true;
                    }
                }
                if !any {
                    // force one incoming edge so every layer is a new level
                    let p = prev[rng.gen_range(0..prev.len())];
                    let d = rng.gen_range(cfg.data_range.0..=cfg.data_range.1);
                    b.add_edge(p, t, d).unwrap();
                }
            }
            cur.push(t);
        }
        prev = cur;
    }
    b.build()
        .expect("layered construction cannot create cycles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use onesched_dag::IsoLevels;

    #[test]
    fn deterministic_per_seed() {
        let cfg = RandomDagConfig::default();
        let a = random_layered(&cfg, 42);
        let b = random_layered(&cfg, 42);
        assert_eq!(a.num_tasks(), b.num_tasks());
        assert_eq!(a.num_edges(), b.num_edges());
        let c = random_layered(&cfg, 43);
        // overwhelmingly likely to differ
        assert!(a.num_tasks() != c.num_tasks() || a.num_edges() != c.num_edges());
    }

    #[test]
    fn depth_matches_layers() {
        let cfg = RandomDagConfig {
            layers: 9,
            ..Default::default()
        };
        for seed in 0..5 {
            let g = random_layered(&cfg, seed);
            assert_eq!(IsoLevels::new(&g).num_levels(), 9, "seed {seed}");
        }
    }

    #[test]
    fn weights_and_data_in_range() {
        let cfg = RandomDagConfig::default();
        let g = random_layered(&cfg, 7);
        for &w in g.weights() {
            assert!((1.0..=10.0).contains(&w));
        }
        for e in g.edges() {
            assert!((0.0..=20.0).contains(&e.data));
        }
    }

    #[test]
    fn single_layer_is_independent_tasks() {
        let cfg = RandomDagConfig {
            layers: 1,
            max_width: 5,
            ..Default::default()
        };
        let g = random_layered(&cfg, 1);
        assert_eq!(g.num_edges(), 0);
    }
}

//! Triangular elimination DAGs: LU, DOOLITTLE, LDMt.
//!
//! All three kernels factor an `n × n` matrix in `n` elimination steps; the
//! task shapes follow the parallel Gaussian-elimination literature the paper
//! cites (Cosnard, Marrakchi, Robert, Trystram).

use onesched_dag::{TaskGraph, TaskGraphBuilder, TaskId};

/// LU decomposition task graph at problem size `n` (Figure 8 workload).
///
/// Step `k` (0-based, `k < n`) has a *pivot* task `t(k,k)` (prepare column
/// `k`) and *update* tasks `t(k,j)` for `k < j < n` (update column `j`).
/// Dependencies:
///
/// * `t(k,k) -> t(k,j)` — an update needs the pivot column;
/// * `t(k,j) -> t(k+1,j)` — step `k+1` works on the columns produced by
///   step `k` (this includes `t(k,k+1) -> t(k+1,k+1)`, the next pivot).
///
/// §5.2: every task at step `k` has weight `n − k`; every edge carries
/// `c × w(src)` data items.
pub fn lu(n: usize, c: f64) -> TaskGraph {
    triangular(n, c, |k| (n - k) as f64)
}

/// Doolittle reduction task graph (Figure 11 workload).
///
/// Same triangular shape as [`lu`] — the Doolittle `kji` reduction computes
/// row `k` of `U` and column `k` of `L` at step `k` — but the work *grows*
/// with the step: a task at (1-based) step `k` has weight `k` (§5.2: the
/// inner dot products lengthen as the factorization proceeds).
pub fn doolittle(n: usize, c: f64) -> TaskGraph {
    triangular(n, c, |k| (k + 1) as f64)
}

/// Shared triangular shape with a per-step weight rule (`k` is 0-based).
fn triangular(n: usize, c: f64, weight: impl Fn(usize) -> f64) -> TaskGraph {
    let mut b = TaskGraphBuilder::with_capacity(n * (n + 1) / 2, n * n);
    // ids[j] = the latest task owning column j (from the previous step)
    let mut col_owner: Vec<Option<TaskId>> = vec![None; n];
    for k in 0..n {
        let w = weight(k);
        let d = c * w;
        let pivot = b.add_task(w);
        if let Some(prev) = col_owner[k] {
            // the previous step's update of column k feeds the pivot
            let dp = c * b.weight_of(prev);
            b.add_edge(prev, pivot, dp).unwrap();
        }
        col_owner[k] = Some(pivot);
        for owner in col_owner.iter_mut().take(n).skip(k + 1) {
            let upd = b.add_task(w);
            b.add_edge(pivot, upd, d).unwrap();
            if let Some(prev) = *owner {
                let dp = c * b.weight_of(prev);
                b.add_edge(prev, upd, dp).unwrap();
            }
            *owner = Some(upd);
        }
    }
    b.build()
        .expect("triangular elimination graphs are acyclic")
}

/// LDMt decomposition task graph (Figure 10 workload).
///
/// The `LDMᵗ` factorization of a *nonsymmetric* matrix computes a column of
/// `L` **and** a column of `M` at every step, so each elimination step
/// carries two independent triangular update families sharing one pivot
/// chain: step `k` has a pivot `p(k)` and, for every trailing column `j`,
/// an `L`-side update and an `M`-side update. Both sides chain column-wise
/// into the next step, and the next pivot joins the two sides' updates of
/// its column. Tasks at (1-based) step `k` have weight `k` (§5.2), and the
/// doubled per-step width is what makes LDMt slightly more parallel than
/// DOOLITTLE in Figure 10 vs Figure 11.
pub fn ldmt(n: usize, c: f64) -> TaskGraph {
    let mut b = TaskGraphBuilder::with_capacity(n * n, 2 * n * n);
    let mut l_owner: Vec<Option<TaskId>> = vec![None; n];
    let mut m_owner: Vec<Option<TaskId>> = vec![None; n];
    for k in 0..n {
        let w = (k + 1) as f64;
        let d = c * w;
        let pivot = b.add_task(w);
        for owner in [&l_owner, &m_owner] {
            if let Some(prev) = owner[k] {
                let dp = c * b.weight_of(prev);
                b.add_edge(prev, pivot, dp).unwrap();
            }
        }
        l_owner[k] = Some(pivot);
        m_owner[k] = Some(pivot);
        for j in (k + 1)..n {
            for owner in [&mut l_owner, &mut m_owner] {
                let upd = b.add_task(w);
                b.add_edge(pivot, upd, d).unwrap();
                if let Some(prev) = owner[j] {
                    let dp = c * b.weight_of(prev);
                    b.add_edge(prev, upd, dp).unwrap();
                }
                owner[j] = Some(upd);
            }
        }
    }
    b.build()
        .expect("triangular elimination graphs are acyclic")
}

#[cfg(test)]
mod tests {
    use super::*;
    use onesched_dag::{GraphProfile, IsoLevels};

    #[test]
    fn lu_task_count_is_triangular() {
        for n in [1usize, 2, 5, 10] {
            let g = lu(n, 10.0);
            assert_eq!(g.num_tasks(), n * (n + 1) / 2, "n = {n}");
        }
    }

    #[test]
    fn lu_weights_decrease_per_step() {
        let g = lu(4, 10.0);
        // step 0: 4 tasks of weight 4; step 1: 3 of weight 3; ...
        let mut weights: Vec<f64> = g.weights().to_vec();
        weights.sort_by(f64::total_cmp);
        assert_eq!(
            weights,
            vec![1.0, 2.0, 2.0, 3.0, 3.0, 3.0, 4.0, 4.0, 4.0, 4.0]
        );
    }

    #[test]
    fn lu_depth_is_two_per_step() {
        // pivot -> update chains: hop depth 2n - 1
        let g = lu(5, 10.0);
        let lv = IsoLevels::new(&g);
        assert_eq!(lv.num_levels(), 2 * 5 - 1);
    }

    #[test]
    fn lu_single_entry_single_exit() {
        let g = lu(6, 10.0);
        assert_eq!(g.entry_tasks().len(), 1);
        assert_eq!(g.exit_tasks().len(), 1, "last pivot is the only sink");
    }

    #[test]
    fn doolittle_weights_increase_per_step() {
        let g = doolittle(4, 10.0);
        let mut weights: Vec<f64> = g.weights().to_vec();
        weights.sort_by(f64::total_cmp);
        assert_eq!(
            weights,
            vec![1.0, 1.0, 1.0, 1.0, 2.0, 2.0, 2.0, 3.0, 3.0, 4.0]
        );
    }

    #[test]
    fn ldmt_is_two_triangles() {
        let g = ldmt(4, 10.0);
        // pivots: 4; updates: 2 × (3 + 2 + 1) = 12
        assert_eq!(g.num_tasks(), 16);
        let profile = GraphProfile::of(&g);
        assert_eq!(profile.entries, 1);
        assert_eq!(profile.exits, 1);
        // per-step width doubles DOOLITTLE's
        let lv = IsoLevels::new(&g);
        assert_eq!(lv.num_levels(), 2 * 4 - 1);
        assert_eq!(lv.width(), 6, "two sides of 3 updates at step 1");
    }

    #[test]
    fn ldmt_pivot_joins_both_sides() {
        let g = ldmt(3, 10.0);
        // step 0: pivot=0, L/M updates of col 1 = 1,2; of col 2 = 3,4
        // step 1: pivot=5 joins both column-1 updates
        let p1 = onesched_dag::TaskId(5);
        assert_eq!(g.in_degree(p1), 2, "next pivot needs L and M side");
    }

    #[test]
    fn degenerate_sizes() {
        assert_eq!(lu(1, 10.0).num_tasks(), 1);
        assert_eq!(doolittle(1, 10.0).num_tasks(), 1);
        assert_eq!(ldmt(1, 10.0).num_tasks(), 1);
        assert_eq!(lu(0, 10.0).num_tasks(), 0);
    }

    #[test]
    fn data_rule_lu() {
        let g = lu(5, 7.0);
        for e in g.edges() {
            assert!((e.data - 7.0 * g.weight(e.src)).abs() < 1e-12);
        }
    }
}

//! The platform type: cycle-times plus a link matrix.

use crate::ProcId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors raised while constructing a [`Platform`].
#[derive(Debug, Clone, PartialEq)]
pub enum PlatformError {
    /// A cycle-time is zero, negative, or non-finite.
    InvalidCycleTime {
        /// Offending processor.
        proc: ProcId,
        /// Rejected value.
        value: f64,
    },
    /// An off-diagonal link entry is negative or NaN
    /// (`+∞` is allowed and means "no direct link").
    InvalidLink {
        /// Source processor.
        from: ProcId,
        /// Destination processor.
        to: ProcId,
        /// Rejected value.
        value: f64,
    },
    /// A diagonal link entry is non-zero.
    NonZeroDiagonal(ProcId),
    /// The link matrix does not have `p × p` entries.
    WrongLinkShape {
        /// Number of processors.
        procs: usize,
        /// Number of entries supplied.
        entries: usize,
    },
    /// The platform has no processors.
    Empty,
}

impl fmt::Display for PlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlatformError::InvalidCycleTime { proc, value } => {
                write!(f, "invalid cycle-time {value} for {proc}")
            }
            PlatformError::InvalidLink { from, to, value } => {
                write!(f, "invalid link({from}, {to}) = {value}")
            }
            PlatformError::NonZeroDiagonal(p) => {
                write!(f, "link({p}, {p}) must be zero (local memory access)")
            }
            PlatformError::WrongLinkShape { procs, entries } => {
                write!(
                    f,
                    "link matrix must have {procs}x{procs} entries, got {entries}"
                )
            }
            PlatformError::Empty => write!(f, "platform must have at least one processor"),
        }
    }
}

impl std::error::Error for PlatformError {}

/// A heterogeneous platform `P = (P, t, link)` (paper §2.1).
///
/// * `cycle_times[i]` = `t_i`, the inverse relative speed of `P_i`;
/// * `link` is a row-major `p × p` matrix; `link(q, r)` is the time to move
///   one data item from `P_q` to `P_r`. The diagonal is zero (local memory
///   accesses are neglected). An entry of `+∞` means there is no direct link
///   and messages must be routed (see [`crate::routing`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Platform {
    cycle_times: Vec<f64>,
    link: Vec<f64>,
}

impl Platform {
    /// Build a platform from explicit cycle-times and a row-major link matrix.
    pub fn new(cycle_times: Vec<f64>, link: Vec<f64>) -> Result<Platform, PlatformError> {
        let p = cycle_times.len();
        if p == 0 {
            return Err(PlatformError::Empty);
        }
        if link.len() != p * p {
            return Err(PlatformError::WrongLinkShape {
                procs: p,
                entries: link.len(),
            });
        }
        for (i, &t) in cycle_times.iter().enumerate() {
            if !t.is_finite() || t <= 0.0 {
                return Err(PlatformError::InvalidCycleTime {
                    proc: ProcId(i as u32),
                    value: t,
                });
            }
        }
        for q in 0..p {
            for r in 0..p {
                let v = link[q * p + r];
                if q == r {
                    if v != 0.0 {
                        return Err(PlatformError::NonZeroDiagonal(ProcId(q as u32)));
                    }
                } else if v.is_nan() || v < 0.0 {
                    return Err(PlatformError::InvalidLink {
                        from: ProcId(q as u32),
                        to: ProcId(r as u32),
                        value: v,
                    });
                }
            }
        }
        Ok(Platform { cycle_times, link })
    }

    /// Fully homogeneous platform: `p` processors with `t_i = 1` and a
    /// complete unit-latency network (`link(q, r) = 1` for `q ≠ r`).
    pub fn homogeneous(p: usize) -> Platform {
        Self::uniform_links(vec![1.0; p], 1.0)
            .expect("homogeneous platform parameters are always valid")
    }

    /// Heterogeneous processors over a complete network where every
    /// off-diagonal link has the same latency `link_time`.
    pub fn uniform_links(cycle_times: Vec<f64>, link_time: f64) -> Result<Platform, PlatformError> {
        let p = cycle_times.len();
        let mut link = vec![link_time; p * p];
        for q in 0..p {
            link[q * p + q] = 0.0;
        }
        Platform::new(cycle_times, link)
    }

    /// The experimental platform of the paper (§5.2): ten processors — five
    /// with cycle-time 6, three with cycle-time 10, two with cycle-time 15 —
    /// fully connected with unit links. Communication-to-computation ratios
    /// are modelled in the testbeds (`data = c × w`), not in the links.
    pub fn paper() -> Platform {
        let mut ct = Vec::with_capacity(10);
        ct.extend(std::iter::repeat_n(6.0, 5));
        ct.extend(std::iter::repeat_n(10.0, 3));
        ct.extend(std::iter::repeat_n(15.0, 2));
        Self::uniform_links(ct, 1.0).expect("paper platform parameters are valid")
    }

    /// Number of processors `p`.
    #[inline]
    pub fn num_procs(&self) -> usize {
        self.cycle_times.len()
    }

    /// Iterate over all processor ids `0..p`.
    pub fn procs(&self) -> impl ExactSizeIterator<Item = ProcId> + Clone {
        (0..self.num_procs() as u32).map(ProcId)
    }

    /// Cycle-time `t_i` of processor `i`.
    #[inline]
    pub fn cycle_time(&self, p: ProcId) -> f64 {
        self.cycle_times[p.index()]
    }

    /// All cycle-times, indexed by processor id.
    #[inline]
    pub fn cycle_times(&self) -> &[f64] {
        &self.cycle_times
    }

    /// Link latency `link(q, r)`; zero when `q == r`, possibly `+∞`.
    #[inline]
    pub fn link(&self, q: ProcId, r: ProcId) -> f64 {
        self.link[q.index() * self.num_procs() + r.index()]
    }

    /// Time to execute a task of weight `w` on processor `p`.
    #[inline]
    pub fn exec_time(&self, w: f64, p: ProcId) -> f64 {
        w * self.cycle_times[p.index()]
    }

    /// Time to transfer `data` items from `q` to `r` over the direct link
    /// (`comm(i, j, q, r) = data(i, j) × link(q, r)`), zero when `q == r`.
    #[inline]
    pub fn comm_time(&self, data: f64, q: ProcId, r: ProcId) -> f64 {
        if q == r {
            0.0
        } else {
            data * self.link(q, r)
        }
    }

    /// The fastest cycle-time `min_i t_i`.
    pub fn min_cycle_time(&self) -> f64 {
        self.cycle_times
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
    }

    /// The id of a fastest processor (smallest cycle-time, lowest id wins).
    pub fn fastest_proc(&self) -> ProcId {
        let mut best = ProcId(0);
        for p in self.procs() {
            if self.cycle_time(p) < self.cycle_time(best) {
                best = p;
            }
        }
        best
    }

    /// Aggregate speed `Σ_i 1/t_i` (tasks of unit weight per time unit when
    /// perfectly load-balanced; paper §4.1).
    pub fn total_speed(&self) -> f64 {
        self.cycle_times.iter().map(|t| 1.0 / t).sum()
    }

    /// Harmonic-mean cycle-time `p / Σ 1/t_i`: the paper's per-unit
    /// computation estimate for bottom levels (§4.1 — a task of weight `w`
    /// contributes `p·w / Σ 1/t_i`).
    pub fn avg_cycle_time(&self) -> f64 {
        self.num_procs() as f64 / self.total_speed()
    }

    /// Harmonic mean of the finite off-diagonal link entries: the paper's
    /// per-data-item communication estimate for bottom levels (§4.1 —
    /// "replace link(q, r) by the inverse of the harmonic mean", i.e. use the
    /// average bandwidth). Returns 0 for a single-processor platform.
    pub fn avg_link_time(&self) -> f64 {
        let p = self.num_procs();
        let mut inv_sum = 0.0;
        let mut count = 0usize;
        for q in 0..p {
            for r in 0..p {
                if q != r {
                    let l = self.link[q * p + r];
                    if l.is_finite() && l > 0.0 {
                        inv_sum += 1.0 / l;
                        count += 1;
                    } else if l == 0.0 {
                        // zero-latency link: infinitely fast, skip
                        count += 1;
                    }
                }
            }
        }
        if count == 0 || inv_sum == 0.0 {
            0.0
        } else {
            count as f64 / inv_sum
        }
    }

    /// Whether all off-diagonal links are finite (complete network).
    pub fn is_fully_connected(&self) -> bool {
        let p = self.num_procs();
        (0..p).all(|q| (0..p).all(|r| q == r || self.link[q * p + r].is_finite()))
    }

    /// Whether all processors have the same cycle-time.
    pub fn is_homogeneous(&self) -> bool {
        self.cycle_times.windows(2).all(|w| w[0] == w[1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_platform_shape() {
        let p = Platform::paper();
        assert_eq!(p.num_procs(), 10);
        assert_eq!(p.cycle_time(ProcId(0)), 6.0);
        assert_eq!(p.cycle_time(ProcId(5)), 10.0);
        assert_eq!(p.cycle_time(ProcId(8)), 15.0);
        assert_eq!(p.link(ProcId(0), ProcId(1)), 1.0);
        assert_eq!(p.link(ProcId(3), ProcId(3)), 0.0);
        assert!(p.is_fully_connected());
        assert!(!p.is_homogeneous());
    }

    #[test]
    fn paper_total_speed() {
        let p = Platform::paper();
        // 5/6 + 3/10 + 2/15 = 0.8333... + 0.3 + 0.1333... = 1.2666...
        assert!((p.total_speed() - 19.0 / 15.0).abs() < 1e-12);
        assert_eq!(p.min_cycle_time(), 6.0);
        assert_eq!(p.fastest_proc(), ProcId(0));
    }

    #[test]
    fn exec_and_comm_times() {
        let p = Platform::paper();
        assert_eq!(p.exec_time(3.0, ProcId(0)), 18.0);
        assert_eq!(p.exec_time(3.0, ProcId(9)), 45.0);
        assert_eq!(p.comm_time(7.0, ProcId(0), ProcId(1)), 7.0);
        assert_eq!(p.comm_time(7.0, ProcId(2), ProcId(2)), 0.0);
    }

    #[test]
    fn homogeneous_helpers() {
        let p = Platform::homogeneous(5);
        assert!(p.is_homogeneous());
        assert_eq!(p.avg_cycle_time(), 1.0);
        assert_eq!(p.avg_link_time(), 1.0);
        assert_eq!(p.total_speed(), 5.0);
    }

    #[test]
    fn avg_cycle_time_harmonic() {
        let p = Platform::uniform_links(vec![1.0, 2.0], 1.0).unwrap();
        // 2 / (1 + 0.5) = 4/3
        assert!((p.avg_cycle_time() - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn avg_link_time_harmonic() {
        // links 1 and 3 (both directions): harmonic mean = 4 / (1+1/3+1+1/3)
        let link = vec![0.0, 1.0, 3.0, 1.0, 0.0, 3.0, 3.0, 3.0, 0.0];
        let p = Platform::new(vec![1.0, 1.0, 1.0], link).unwrap();
        let got = p.avg_link_time();
        // off-diagonal entries: 1, 3, 1, 3, 3, 3
        let inv = 1.0 + 1.0 / 3.0 + 1.0 + 1.0 / 3.0 + 1.0 / 3.0 + 1.0 / 3.0;
        assert!((got - 6.0 / inv).abs() < 1e-12);
        assert!((got - 1.8).abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(matches!(
            Platform::new(vec![], vec![]),
            Err(PlatformError::Empty)
        ));
        assert!(matches!(
            Platform::new(vec![1.0], vec![0.0, 1.0]),
            Err(PlatformError::WrongLinkShape { .. })
        ));
        assert!(matches!(
            Platform::uniform_links(vec![0.0], 1.0),
            Err(PlatformError::InvalidCycleTime { .. })
        ));
        assert!(matches!(
            Platform::new(vec![1.0, 1.0], vec![0.0, -1.0, 1.0, 0.0]),
            Err(PlatformError::InvalidLink { .. })
        ));
        assert!(matches!(
            Platform::new(vec![1.0, 1.0], vec![0.5, 1.0, 1.0, 0.0]),
            Err(PlatformError::NonZeroDiagonal(_))
        ));
    }

    #[test]
    fn infinite_links_allowed_but_not_fully_connected() {
        let link = vec![0.0, f64::INFINITY, 1.0, 0.0];
        let p = Platform::new(vec![1.0, 1.0], link).unwrap();
        assert!(!p.is_fully_connected());
    }

    #[test]
    fn serde_roundtrip() {
        let p = Platform::paper();
        let json = serde_json::to_string(&p).unwrap();
        let p2: Platform = serde_json::from_str(&json).unwrap();
        assert_eq!(p2.num_procs(), 10);
        assert_eq!(p2.cycle_times(), p.cycle_times());
    }
}

//! Strongly-typed processor index.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a processor; dense `0..p`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ProcId(pub u32);

impl ProcId {
    /// The id as a `usize`, for indexing per-processor state.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for ProcId {
    #[inline]
    fn from(v: u32) -> Self {
        ProcId(v)
    }
}

impl fmt::Debug for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_index() {
        let p = ProcId::from(4u32);
        assert_eq!(p.index(), 4);
        assert_eq!(p.to_string(), "P4");
    }
}

//! # onesched-platform — heterogeneous computing-resource model
//!
//! Implements the resource side of the scheduling model (paper §2.1):
//! `P = (P, t, link)` — a set of processors `P_i`, each with a cycle-time
//! `t_i` (the inverse of its relative speed), and a communication matrix
//! `link(q, r)` giving the time to transfer one data item from `P_q` to
//! `P_r` (zero on the diagonal).
//!
//! Executing a task of weight `w` on `P_i` takes `w × t_i` time units;
//! sending `d` data items from `P_q` to `P_r` takes `d × link(q, r)`.
//!
//! The crate also provides:
//! * the paper's experimental platform (§5.2): ten processors — five with
//!   cycle-time 6, three with cycle-time 10, two with cycle-time 15 — over a
//!   fully homogeneous unit-latency network ([`Platform::paper`]);
//! * speedup upper bounds and the perfect-load-balance chunk size `B`
//!   ([`bounds`]);
//! * static shortest-path routing for non-fully-connected topologies
//!   (paper §4.3 extension: "if there is no direct link from P2 to P1, we
//!   redo the previous step for all intermediate messages between adjacent
//!   processors") in [`routing`].

#![warn(missing_docs)]
// Burn-down: pre-existing unwrap/expect/panic sites are grandfathered
// here and tracked per (file, lint) by `onesched-analyze` via the committed
// analyze-baseline.json; new code must use typed errors instead. Remove
// this allow once the crate's P-lint counts reach zero. See ANALYSIS.md.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
#![forbid(unsafe_code)]

pub mod bounds;
mod ids;
mod platform;
pub mod routing;
pub mod topology;

pub use ids::ProcId;
pub use platform::{Platform, PlatformError};
pub use routing::RoutingTable;

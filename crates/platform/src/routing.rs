//! Static shortest-path routing over non-fully-connected networks.
//!
//! The paper's §4.3 notes the one-port machinery extends to routed networks:
//! "if there is no direct link from P2 to P1, we redo the previous step for
//! all intermediate messages between adjacent processors". This module
//! provides the static routing table (Floyd–Warshall over link latencies, as
//! in the Sinnen–Sousa model the paper cites, where "each processor is
//! provided with a routing table" and routing is fully static).

use crate::{Platform, ProcId};

/// All-pairs static routes over the platform's direct links.
#[derive(Debug, Clone)]
pub struct RoutingTable {
    p: usize,
    /// `dist[q * p + r]` = total per-item latency along the chosen route.
    dist: Vec<f64>,
    /// `next[q * p + r]` = next hop from `q` towards `r` (`u32::MAX` if
    /// unreachable).
    next: Vec<u32>,
}

impl RoutingTable {
    /// Build the routing table for `platform` (Floyd–Warshall,
    /// `O(p³)` — platforms are small).
    pub fn new(platform: &Platform) -> RoutingTable {
        let p = platform.num_procs();
        let mut dist = vec![f64::INFINITY; p * p];
        let mut next = vec![u32::MAX; p * p];
        for q in 0..p {
            for r in 0..p {
                let l = platform.link(ProcId(q as u32), ProcId(r as u32));
                if q == r {
                    dist[q * p + r] = 0.0;
                    next[q * p + r] = r as u32;
                } else if l.is_finite() {
                    dist[q * p + r] = l;
                    next[q * p + r] = r as u32;
                }
            }
        }
        for k in 0..p {
            for q in 0..p {
                let dqk = dist[q * p + k];
                if !dqk.is_finite() {
                    continue;
                }
                for r in 0..p {
                    let alt = dqk + dist[k * p + r];
                    if alt < dist[q * p + r] {
                        dist[q * p + r] = alt;
                        next[q * p + r] = next[q * p + k];
                    }
                }
            }
        }
        RoutingTable { p, dist, next }
    }

    /// Total per-item latency of the static route from `q` to `r`
    /// (`+∞` if disconnected, 0 if `q == r`).
    #[inline]
    pub fn route_latency(&self, q: ProcId, r: ProcId) -> f64 {
        self.dist[q.index() * self.p + r.index()]
    }

    /// Whether `r` is reachable from `q`.
    #[inline]
    pub fn reachable(&self, q: ProcId, r: ProcId) -> bool {
        self.route_latency(q, r).is_finite()
    }

    /// The first hop on the static route from `q` towards `r`
    /// (`None` when `q == r` or `r` is unreachable).
    #[inline]
    pub fn first_hop(&self, q: ProcId, r: ProcId) -> Option<ProcId> {
        if q == r || !self.reachable(q, r) {
            return None;
        }
        Some(ProcId(self.next[q.index() * self.p + r.index()]))
    }

    /// The first ordered pair `(q, r)` with no route from `q` to `r`, or
    /// `None` when the platform is strongly connected. Routed schedulers
    /// check this upfront so disconnection surfaces as a typed error
    /// instead of a mid-schedule panic.
    pub fn first_unreachable(&self) -> Option<(ProcId, ProcId)> {
        for q in 0..self.p {
            for r in 0..self.p {
                if !self.dist[q * self.p + r].is_finite() {
                    return Some((ProcId(q as u32), ProcId(r as u32)));
                }
            }
        }
        None
    }

    /// The sequence of hops `(from, to)` of the static route from `q` to `r`.
    /// Empty when `q == r`; `None` when disconnected.
    pub fn path(&self, q: ProcId, r: ProcId) -> Option<Vec<(ProcId, ProcId)>> {
        if q == r {
            return Some(Vec::new());
        }
        if !self.reachable(q, r) {
            return None;
        }
        let mut hops = Vec::new();
        let mut cur = q;
        while cur != r {
            let nxt = self.next[cur.index() * self.p + r.index()];
            debug_assert_ne!(nxt, u32::MAX);
            let nxt = ProcId(nxt);
            hops.push((cur, nxt));
            cur = nxt;
            if hops.len() > self.p {
                unreachable!("routing loop: Floyd-Warshall next-hop table is loop-free");
            }
        }
        Some(hops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Platform;

    /// Line topology 0 - 1 - 2 with unit links, no direct 0-2 link.
    fn line3() -> Platform {
        let inf = f64::INFINITY;
        let link = vec![
            0.0, 1.0, inf, //
            1.0, 0.0, 1.0, //
            inf, 1.0, 0.0,
        ];
        Platform::new(vec![1.0; 3], link).unwrap()
    }

    #[test]
    fn direct_links_route_directly() {
        let p = Platform::paper();
        let rt = RoutingTable::new(&p);
        assert_eq!(rt.route_latency(ProcId(0), ProcId(9)), 1.0);
        assert_eq!(
            rt.path(ProcId(0), ProcId(9)).unwrap(),
            vec![(ProcId(0), ProcId(9))]
        );
    }

    #[test]
    fn line_routes_through_middle() {
        let p = line3();
        let rt = RoutingTable::new(&p);
        assert_eq!(rt.route_latency(ProcId(0), ProcId(2)), 2.0);
        assert_eq!(
            rt.path(ProcId(0), ProcId(2)).unwrap(),
            vec![(ProcId(0), ProcId(1)), (ProcId(1), ProcId(2))]
        );
    }

    #[test]
    fn self_route_is_empty() {
        let p = line3();
        let rt = RoutingTable::new(&p);
        assert_eq!(rt.route_latency(ProcId(1), ProcId(1)), 0.0);
        assert_eq!(rt.path(ProcId(1), ProcId(1)).unwrap(), Vec::new());
    }

    #[test]
    fn disconnected_is_unreachable() {
        let inf = f64::INFINITY;
        let link = vec![0.0, inf, inf, 0.0];
        let p = Platform::new(vec![1.0, 1.0], link).unwrap();
        let rt = RoutingTable::new(&p);
        assert!(!rt.reachable(ProcId(0), ProcId(1)));
        assert_eq!(rt.path(ProcId(0), ProcId(1)), None);
        assert_eq!(rt.first_unreachable(), Some((ProcId(0), ProcId(1))));
        assert_eq!(rt.first_hop(ProcId(0), ProcId(1)), None);
    }

    #[test]
    fn connected_platforms_have_no_unreachable_pair() {
        let rt = RoutingTable::new(&line3());
        assert_eq!(rt.first_unreachable(), None);
    }

    #[test]
    fn first_hop_walks_the_route() {
        let rt = RoutingTable::new(&line3());
        // chaining first_hop reproduces the full path
        let mut hops = Vec::new();
        let mut cur = ProcId(0);
        while let Some(next) = rt.first_hop(cur, ProcId(2)) {
            hops.push((cur, next));
            cur = next;
        }
        assert_eq!(hops, rt.path(ProcId(0), ProcId(2)).unwrap());
        assert_eq!(rt.first_hop(ProcId(0), ProcId(2)), Some(ProcId(1)));
        assert_eq!(rt.first_hop(ProcId(1), ProcId(1)), None);
    }

    #[test]
    fn asymmetric_links_respected() {
        // 0 -> 1 costs 1, 1 -> 0 costs 5.
        let link = vec![0.0, 1.0, 5.0, 0.0];
        let p = Platform::new(vec![1.0, 1.0], link).unwrap();
        let rt = RoutingTable::new(&p);
        assert_eq!(rt.route_latency(ProcId(0), ProcId(1)), 1.0);
        assert_eq!(rt.route_latency(ProcId(1), ProcId(0)), 5.0);
    }

    #[test]
    fn routing_prefers_cheap_detour() {
        // direct 0->2 costs 10, through 1 costs 2.
        let link = vec![
            0.0, 1.0, 10.0, //
            1.0, 0.0, 1.0, //
            10.0, 1.0, 0.0,
        ];
        let p = Platform::new(vec![1.0; 3], link).unwrap();
        let rt = RoutingTable::new(&p);
        assert_eq!(rt.route_latency(ProcId(0), ProcId(2)), 2.0);
        assert_eq!(rt.path(ProcId(0), ProcId(2)).unwrap().len(), 2);
    }
}

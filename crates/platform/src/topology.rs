//! Constructors for common interconnect topologies.
//!
//! The paper's experiments use a fully-connected homogeneous network, but the
//! model (and the one-port machinery) supports arbitrary static topologies;
//! these constructors make it easy to study stars, rings and buses.

use crate::{Platform, PlatformError};

/// Star topology: processor 0 is the hub; every other processor has a direct
/// link only to the hub, with per-item latency `link_time`.
pub fn star(cycle_times: Vec<f64>, link_time: f64) -> Result<Platform, PlatformError> {
    let p = cycle_times.len();
    let inf = f64::INFINITY;
    let mut link = vec![inf; p * p];
    for q in 0..p {
        link[q * p + q] = 0.0;
        if q != 0 {
            link[q * p] = link_time;
            link[q] = link_time;
        }
    }
    Platform::new(cycle_times, link)
}

/// Bidirectional ring: processor `i` is linked to `(i±1) mod p` with per-item
/// latency `link_time`.
pub fn ring(cycle_times: Vec<f64>, link_time: f64) -> Result<Platform, PlatformError> {
    let p = cycle_times.len();
    let inf = f64::INFINITY;
    let mut link = vec![inf; p * p];
    for q in 0..p {
        link[q * p + q] = 0.0;
        if p > 1 {
            let next = (q + 1) % p;
            let prev = (q + p - 1) % p;
            link[q * p + next] = link_time;
            link[q * p + prev] = link_time;
        }
    }
    Platform::new(cycle_times, link)
}

/// Linear array (open chain): processor `i` is linked to `i±1` only.
pub fn line(cycle_times: Vec<f64>, link_time: f64) -> Result<Platform, PlatformError> {
    let p = cycle_times.len();
    let inf = f64::INFINITY;
    let mut link = vec![inf; p * p];
    for q in 0..p {
        link[q * p + q] = 0.0;
        if q + 1 < p {
            link[q * p + q + 1] = link_time;
            link[(q + 1) * p + q] = link_time;
        }
    }
    Platform::new(cycle_times, link)
}

/// A seeded random connected topology: a uniformly random spanning tree
/// (node `i` attaches to a uniform earlier node) plus each remaining
/// unordered pair linked with probability `extra_prob`. All links are
/// bidirectional with per-item latency `link_time`. Deterministic per
/// `seed` — the routed sweeps and proptests rely on it.
pub fn random_connected(
    cycle_times: Vec<f64>,
    link_time: f64,
    extra_prob: f64,
    seed: u64,
) -> Result<Platform, PlatformError> {
    let p = cycle_times.len();
    let inf = f64::INFINITY;
    let mut link = vec![inf; p * p];
    for q in 0..p {
        link[q * p + q] = 0.0;
    }
    // xorshift64* — tiny, deterministic, and dependency-free (the platform
    // crate deliberately has no RNG dependency).
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };
    let extra_prob = extra_prob.clamp(0.0, 1.0);
    for i in 1..p {
        let j = (next() % i as u64) as usize;
        link[i * p + j] = link_time;
        link[j * p + i] = link_time;
    }
    for i in 0..p {
        for j in (i + 1)..p {
            if link[i * p + j].is_finite() {
                continue; // already a tree edge
            }
            let draw = (next() >> 11) as f64 / (1u64 << 53) as f64;
            if draw < extra_prob {
                link[i * p + j] = link_time;
                link[j * p + i] = link_time;
            }
        }
    }
    Platform::new(cycle_times, link)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ProcId, RoutingTable};

    #[test]
    fn star_routes_via_hub() {
        let p = star(vec![1.0; 4], 2.0).unwrap();
        assert_eq!(p.link(ProcId(1), ProcId(0)), 2.0);
        assert!(!p.link(ProcId(1), ProcId(2)).is_finite());
        let rt = RoutingTable::new(&p);
        assert_eq!(rt.route_latency(ProcId(1), ProcId(2)), 4.0);
        assert_eq!(
            rt.path(ProcId(1), ProcId(2)).unwrap(),
            vec![(ProcId(1), ProcId(0)), (ProcId(0), ProcId(2))]
        );
    }

    #[test]
    fn ring_wraps_around() {
        let p = ring(vec![1.0; 5], 1.0).unwrap();
        assert_eq!(p.link(ProcId(0), ProcId(4)), 1.0);
        assert_eq!(p.link(ProcId(4), ProcId(0)), 1.0);
        assert!(!p.link(ProcId(0), ProcId(2)).is_finite());
        let rt = RoutingTable::new(&p);
        assert_eq!(rt.route_latency(ProcId(0), ProcId(2)), 2.0);
    }

    #[test]
    fn line_is_open() {
        let p = line(vec![1.0; 4], 1.0).unwrap();
        assert!(!p.link(ProcId(0), ProcId(3)).is_finite());
        let rt = RoutingTable::new(&p);
        assert_eq!(rt.route_latency(ProcId(0), ProcId(3)), 3.0);
    }

    #[test]
    fn two_proc_ring_is_complete() {
        let p = ring(vec![1.0, 2.0], 1.0).unwrap();
        assert!(p.is_fully_connected());
    }

    #[test]
    fn singleton_topologies() {
        assert!(star(vec![1.0], 1.0).unwrap().is_fully_connected());
        assert!(ring(vec![1.0], 1.0).unwrap().is_fully_connected());
        assert!(line(vec![1.0], 1.0).unwrap().is_fully_connected());
        assert!(random_connected(vec![1.0], 1.0, 0.5, 3)
            .unwrap()
            .is_fully_connected());
    }

    #[test]
    fn random_connected_is_connected_and_deterministic() {
        for seed in 0..20u64 {
            let p = random_connected(vec![1.0; 7], 1.0, 0.2, seed).unwrap();
            let rt = RoutingTable::new(&p);
            assert_eq!(rt.first_unreachable(), None, "seed {seed}");
            // symmetric links
            for q in p.procs() {
                for r in p.procs() {
                    assert_eq!(p.link(q, r), p.link(r, q), "seed {seed}");
                }
            }
            let again = random_connected(vec![1.0; 7], 1.0, 0.2, seed).unwrap();
            for q in p.procs() {
                for r in p.procs() {
                    assert_eq!(p.link(q, r), again.link(q, r), "seed {seed}");
                }
            }
        }
    }

    #[test]
    fn random_connected_extra_prob_extremes() {
        // prob 1: complete network; prob 0: exactly the spanning tree
        let full = random_connected(vec![1.0; 6], 1.0, 1.0, 9).unwrap();
        assert!(full.is_fully_connected());
        let tree = random_connected(vec![1.0; 6], 1.0, 0.0, 9).unwrap();
        let links = (0..6)
            .flat_map(|q| (0..6).map(move |r| (q, r)))
            .filter(|&(q, r)| q != r && tree.link(ProcId(q), ProcId(r)).is_finite())
            .count();
        assert_eq!(links, 2 * 5, "a spanning tree over 6 nodes has 5 edges");
    }
}

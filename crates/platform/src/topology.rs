//! Constructors for common interconnect topologies.
//!
//! The paper's experiments use a fully-connected homogeneous network, but the
//! model (and the one-port machinery) supports arbitrary static topologies;
//! these constructors make it easy to study stars, rings and buses.

use crate::{Platform, PlatformError};

/// Star topology: processor 0 is the hub; every other processor has a direct
/// link only to the hub, with per-item latency `link_time`.
pub fn star(cycle_times: Vec<f64>, link_time: f64) -> Result<Platform, PlatformError> {
    let p = cycle_times.len();
    let inf = f64::INFINITY;
    let mut link = vec![inf; p * p];
    for q in 0..p {
        link[q * p + q] = 0.0;
        if q != 0 {
            link[q * p] = link_time;
            link[q] = link_time;
        }
    }
    Platform::new(cycle_times, link)
}

/// Bidirectional ring: processor `i` is linked to `(i±1) mod p` with per-item
/// latency `link_time`.
pub fn ring(cycle_times: Vec<f64>, link_time: f64) -> Result<Platform, PlatformError> {
    let p = cycle_times.len();
    let inf = f64::INFINITY;
    let mut link = vec![inf; p * p];
    for q in 0..p {
        link[q * p + q] = 0.0;
        if p > 1 {
            let next = (q + 1) % p;
            let prev = (q + p - 1) % p;
            link[q * p + next] = link_time;
            link[q * p + prev] = link_time;
        }
    }
    Platform::new(cycle_times, link)
}

/// Linear array (open chain): processor `i` is linked to `i±1` only.
pub fn line(cycle_times: Vec<f64>, link_time: f64) -> Result<Platform, PlatformError> {
    let p = cycle_times.len();
    let inf = f64::INFINITY;
    let mut link = vec![inf; p * p];
    for q in 0..p {
        link[q * p + q] = 0.0;
        if q + 1 < p {
            link[q * p + q + 1] = link_time;
            link[(q + 1) * p + q] = link_time;
        }
    }
    Platform::new(cycle_times, link)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ProcId, RoutingTable};

    #[test]
    fn star_routes_via_hub() {
        let p = star(vec![1.0; 4], 2.0).unwrap();
        assert_eq!(p.link(ProcId(1), ProcId(0)), 2.0);
        assert!(!p.link(ProcId(1), ProcId(2)).is_finite());
        let rt = RoutingTable::new(&p);
        assert_eq!(rt.route_latency(ProcId(1), ProcId(2)), 4.0);
        assert_eq!(
            rt.path(ProcId(1), ProcId(2)).unwrap(),
            vec![(ProcId(1), ProcId(0)), (ProcId(0), ProcId(2))]
        );
    }

    #[test]
    fn ring_wraps_around() {
        let p = ring(vec![1.0; 5], 1.0).unwrap();
        assert_eq!(p.link(ProcId(0), ProcId(4)), 1.0);
        assert_eq!(p.link(ProcId(4), ProcId(0)), 1.0);
        assert!(!p.link(ProcId(0), ProcId(2)).is_finite());
        let rt = RoutingTable::new(&p);
        assert_eq!(rt.route_latency(ProcId(0), ProcId(2)), 2.0);
    }

    #[test]
    fn line_is_open() {
        let p = line(vec![1.0; 4], 1.0).unwrap();
        assert!(!p.link(ProcId(0), ProcId(3)).is_finite());
        let rt = RoutingTable::new(&p);
        assert_eq!(rt.route_latency(ProcId(0), ProcId(3)), 3.0);
    }

    #[test]
    fn two_proc_ring_is_complete() {
        let p = ring(vec![1.0, 2.0], 1.0).unwrap();
        assert!(p.is_fully_connected());
    }

    #[test]
    fn singleton_topologies() {
        assert!(star(vec![1.0], 1.0).unwrap().is_fully_connected());
        assert!(ring(vec![1.0], 1.0).unwrap().is_fully_connected());
        assert!(line(vec![1.0], 1.0).unwrap().is_fully_connected());
    }
}

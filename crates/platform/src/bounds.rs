//! Speedup bounds and the perfect-load-balance chunk size (paper §5.2).
//!
//! With processors of cycle-times `t_1..t_p`, a workload of total weight `W`
//! runs sequentially on the fastest processor in `W × min_i t_i` and, with a
//! perfect load balance and free communications, in parallel in
//! `W / Σ_i 1/t_i`. The speedup is therefore bounded by
//! `min_i t_i × Σ_i 1/t_i` — for the paper's platform
//! `6 × (5/6 + 3/10 + 2/15) = 7.6`.

use crate::Platform;

/// Upper bound on the achievable speedup over the fastest processor,
/// neglecting all communications and dependences (paper §5.2: 7.6 for the
/// experimental platform).
pub fn speedup_upper_bound(p: &Platform) -> f64 {
    p.min_cycle_time() * p.total_speed()
}

/// Idealized parallel execution time of total work `w` on `p`, assuming a
/// perfect load balance and free communications: `w / Σ 1/t_i`.
pub fn ideal_parallel_time(p: &Platform, w: f64) -> f64 {
    w / p.total_speed()
}

/// Sequential execution time of total work `w` on the fastest processor.
pub fn sequential_time(p: &Platform, w: f64) -> f64 {
    w * p.min_cycle_time()
}

/// The smallest number of equal-size tasks that can be distributed to the
/// processors with *perfect* load balance, for integer cycle-times:
/// `B = lcm(t_1..t_p) × Σ 1/t_i = Σ_i lcm / t_i` (paper §4.2 / §5.2 — 38 for
/// the experimental platform: 5·5 + 3·3 + 2·2).
///
/// Returns `None` if any cycle-time is not a positive integer (the formula
/// is only meaningful for integer cycle-times) or on overflow.
pub fn perfect_balance_chunk(p: &Platform) -> Option<u64> {
    let mut ts: Vec<u64> = Vec::with_capacity(p.num_procs());
    for &t in p.cycle_times() {
        if t <= 0.0 || t.fract() != 0.0 || t > u64::MAX as f64 {
            return None;
        }
        ts.push(t as u64);
    }
    let l = ts.iter().try_fold(1u64, |acc, &t| {
        let g = gcd(acc, t);
        acc.checked_mul(t / g)
    })?;
    ts.iter().try_fold(0u64, |acc, &t| acc.checked_add(l / t))
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Platform;

    #[test]
    fn paper_speedup_bound_is_7_6() {
        let p = Platform::paper();
        assert!((speedup_upper_bound(&p) - 7.6).abs() < 1e-12);
    }

    #[test]
    fn paper_perfect_balance_chunk_is_38() {
        let p = Platform::paper();
        assert_eq!(perfect_balance_chunk(&p), Some(38));
    }

    #[test]
    fn paper_38_tasks_in_30_units() {
        // §5.2: 38 unit tasks run in 30 time units; sequentially 228.
        let p = Platform::paper();
        assert!((ideal_parallel_time(&p, 38.0) - 30.0).abs() < 1e-12);
        assert!((sequential_time(&p, 38.0) - 228.0).abs() < 1e-12);
        assert!((sequential_time(&p, 38.0) / ideal_parallel_time(&p, 38.0) - 7.6).abs() < 1e-12);
    }

    #[test]
    fn homogeneous_bound_is_p() {
        let p = Platform::homogeneous(8);
        assert_eq!(speedup_upper_bound(&p), 8.0);
        assert_eq!(perfect_balance_chunk(&p), Some(8));
    }

    #[test]
    fn non_integer_cycle_times_have_no_chunk() {
        let p = Platform::uniform_links(vec![1.5, 2.0], 1.0).unwrap();
        assert_eq!(perfect_balance_chunk(&p), None);
    }

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(7, 13), 1);
        assert_eq!(gcd(0, 5), 5);
        assert_eq!(gcd(5, 0), 5);
    }
}

//! Shared helpers for the criterion benchmark harness.
//!
//! Each `benches/figNN_*.rs` target regenerates one figure of the paper:
//! it times HEFT and ILHA (with the paper's per-testbed chunk size `B`)
//! under the bi-directional one-port model on the paper platform, and
//! reports the resulting speedups through criterion's output so the curve
//! shape can be compared against the paper's (EXPERIMENTS.md records the
//! series produced by the `experiments` binary, which shares this code
//! path).
//!
//! Benchmark sizes are smaller than the paper's 100–500 sweep so that
//! `cargo bench --workspace` completes in minutes; the `experiments` binary
//! runs the full-size sweep.

#![forbid(unsafe_code)]

use criterion::{BenchmarkId, Criterion};
use onesched_heuristics::{CommModel, Heft, Ilha, Scheduler};
use onesched_platform::Platform;
use onesched_testbeds::{Testbed, PAPER_C};

/// Problem sizes used by the figure benches (kept small; see module docs).
pub const BENCH_SIZES: [usize; 2] = [30, 60];

/// Benchmark one testbed: schedule-construction time of HEFT and ILHA at
/// [`BENCH_SIZES`], printing each schedule's speedup once as context.
pub fn bench_figure(c: &mut Criterion, tb: Testbed) {
    let platform = Platform::paper();
    let model = CommModel::OnePortBidir;
    let mut group = c.benchmark_group(format!("fig{:02}_{}", tb.figure(), tb.name()));
    group.sample_size(10);
    for &n in &BENCH_SIZES {
        let g = tb.generate(n, PAPER_C);
        let heft = Heft::new();
        let ilha = Ilha::new(tb.paper_best_b());
        // Print the figure's datapoint (the *quality* result) once.
        let hs = heft.schedule(&g, &platform, model).speedup(&g, &platform);
        let is = ilha.schedule(&g, &platform, model).speedup(&g, &platform);
        println!(
            "[fig{:02}] {tb} n={n}: HEFT speedup {hs:.3}, ILHA(B={}) speedup {is:.3}",
            tb.figure(),
            tb.paper_best_b()
        );
        group.bench_with_input(BenchmarkId::new("HEFT", n), &g, |b, g| {
            b.iter(|| heft.schedule(g, &platform, model).makespan())
        });
        group.bench_with_input(BenchmarkId::new("ILHA", n), &g, |b, g| {
            b.iter(|| ilha.schedule(g, &platform, model).makespan())
        });
    }
    group.finish();
}

//! Microbenchmarks for the substrates the schedulers are built on:
//! timeline gap search (dense and sparse), graph construction, rank
//! computation, and the schedule validator.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use onesched_dag::{bottom_levels, RankWeights, TopoOrder};
use onesched_heuristics::{CommModel, Heft, Scheduler};
use onesched_platform::Platform;
use onesched_sim::{validate, Timeline};
use onesched_testbeds::{Testbed, PAPER_C};

fn timeline_dense_gap_search(c: &mut Criterion) {
    // A timeline with 10k back-to-back intervals and a single gap near the
    // end: the worst case for naive scanning, the motivating case for the
    // block-skip metadata.
    let mut tl = Timeline::new();
    for i in 0..10_000 {
        tl.occupy(i as f64 * 2.0, 2.0 - f64::from(i == 7_000));
    }
    c.bench_function("timeline/dense_gap_search", |b| {
        b.iter(|| tl.earliest_gap(0.0, 1.5))
    });
}

fn timeline_occupy(c: &mut Criterion) {
    c.bench_function("timeline/occupy_10k_appends", |b| {
        b.iter_batched(
            Timeline::new,
            |mut tl| {
                for i in 0..10_000 {
                    tl.occupy(i as f64, 1.0);
                }
                tl.len()
            },
            BatchSize::SmallInput,
        )
    });
    // Front-loaded inserts: every occupy lands before everything already
    // stored — the case that made the seed's flat sorted `Vec` quadratic
    // (full memmove + metadata rebuild per insert) and that the chunked
    // timeline absorbs with one small chunk shift.
    c.bench_function("timeline/occupy_10k_front_inserts", |b| {
        b.iter_batched(
            Timeline::new,
            |mut tl| {
                for i in (0..10_000).rev() {
                    tl.occupy(i as f64 * 2.0, 1.0);
                }
                tl.len()
            },
            BatchSize::SmallInput,
        )
    });
}

fn timeline_free_time_accounting(c: &mut Criterion) {
    // The pruning bound's free-time query over a long fragmented timeline.
    let mut tl = Timeline::new();
    for i in 0..10_000 {
        tl.occupy(i as f64 * 3.0, 2.0);
    }
    c.bench_function("timeline/earliest_finish_of_work_10k", |b| {
        b.iter(|| tl.earliest_finish_of_work(0.0, 5_000.0))
    });
}

fn graph_generation(c: &mut Criterion) {
    c.bench_function("testbeds/lu_n100_generate", |b| {
        b.iter(|| Testbed::Lu.generate(100, PAPER_C).num_tasks())
    });
    c.bench_function("testbeds/laplace_n100_generate", |b| {
        b.iter(|| Testbed::Laplace.generate(100, PAPER_C).num_tasks())
    });
}

fn ranks(c: &mut Criterion) {
    let g = Testbed::Lu.generate(100, PAPER_C);
    let topo = TopoOrder::new(&g);
    c.bench_function("dag/bottom_levels_lu_n100", |b| {
        b.iter(|| bottom_levels(&g, &topo, RankWeights::homogeneous()))
    });
}

fn validator(c: &mut Criterion) {
    let g = Testbed::Laplace.generate(50, PAPER_C);
    let p = Platform::paper();
    let s = Heft::new().schedule(&g, &p, CommModel::OnePortBidir);
    c.bench_function("sim/validate_laplace_n50", |b| {
        b.iter(|| validate(&g, &p, CommModel::OnePortBidir, &s).len())
    });
}

criterion_group!(
    benches,
    timeline_dense_gap_search,
    timeline_occupy,
    timeline_free_time_accounting,
    graph_generation,
    ranks,
    validator
);
criterion_main!(benches);

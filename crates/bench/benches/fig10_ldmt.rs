//! Regenerates the paper's Figure 10 series (Ldmt testbed): HEFT vs
//! ILHA under the bi-directional one-port model on the paper platform.

use criterion::{criterion_group, criterion_main, Criterion};
use onesched_bench::bench_figure;
use onesched_testbeds::Testbed;

fn bench(c: &mut Criterion) {
    bench_figure(c, Testbed::Ldmt);
}

criterion_group!(benches, bench);
criterion_main!(benches);

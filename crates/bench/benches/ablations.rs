//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! 1. insertion-based vs append-only compute placement in one-port HEFT;
//! 2. incoming-message ordering when serializing on the ports;
//! 3. ILHA's zero-communication scan depth (paper step 1 vs the §4.4
//!    one-message variation);
//! 4. the §4.4 third-step communication rescheduling;
//! 5. the four communication models on one workload.
//!
//! Each bench prints the resulting makespans once (the quality side of the
//! ablation) and times schedule construction (the cost side).

use criterion::{criterion_group, criterion_main, Criterion};
use onesched_heuristics::resched::WithResched;
use onesched_heuristics::{
    CommModel, CommOrder, Heft, Ilha, PlacementPolicy, ScanDepth, Scheduler,
};
use onesched_platform::Platform;
use onesched_testbeds::{Testbed, PAPER_C};

fn ablation_insertion(c: &mut Criterion) {
    let g = Testbed::Lu.generate(40, PAPER_C);
    let p = Platform::paper();
    let m = CommModel::OnePortBidir;
    let mut group = c.benchmark_group("ablation_insertion");
    group.sample_size(10);
    for (label, insertion) in [("insertion", true), ("append", false)] {
        let s = Heft::with_policy(PlacementPolicy {
            insertion,
            ..PlacementPolicy::paper()
        });
        println!(
            "[ablation_insertion] {label}: makespan {:.0}",
            s.schedule(&g, &p, m).makespan()
        );
        group.bench_function(label, |b| b.iter(|| s.schedule(&g, &p, m).makespan()));
    }
    group.finish();
}

fn ablation_comm_order(c: &mut Criterion) {
    let g = Testbed::Ldmt.generate(30, PAPER_C);
    let p = Platform::paper();
    let m = CommModel::OnePortBidir;
    let mut group = c.benchmark_group("ablation_comm_order");
    group.sample_size(10);
    for (label, order) in [
        ("parent-finish", CommOrder::ByParentFinish),
        ("data-desc", CommOrder::ByDataDesc),
        ("data-asc", CommOrder::ByDataAsc),
        ("parent-id", CommOrder::ByParentId),
    ] {
        let s = Heft::with_policy(PlacementPolicy {
            comm_order: order,
            ..PlacementPolicy::paper()
        });
        println!(
            "[ablation_comm_order] {label}: makespan {:.0}",
            s.schedule(&g, &p, m).makespan()
        );
        group.bench_function(label, |b| b.iter(|| s.schedule(&g, &p, m).makespan()));
    }
    group.finish();
}

fn ablation_scan_depth(c: &mut Criterion) {
    let g = Testbed::Laplace.generate(40, PAPER_C);
    let p = Platform::paper();
    let m = CommModel::OnePortBidir;
    let mut group = c.benchmark_group("ablation_scan_depth");
    group.sample_size(10);
    for (label, scan) in [
        ("zero-comm", ScanDepth::ZeroComm),
        ("one-comm", ScanDepth::UpToOneComm),
    ] {
        let mut s = Ilha::new(38);
        s.scan = scan;
        println!(
            "[ablation_scan_depth] {label}: makespan {:.0}",
            s.schedule(&g, &p, m).makespan()
        );
        group.bench_function(label, |b| b.iter(|| s.schedule(&g, &p, m).makespan()));
    }
    group.finish();
}

fn ablation_resched(c: &mut Criterion) {
    let g = Testbed::Doolittle.generate(30, PAPER_C);
    let p = Platform::paper();
    let m = CommModel::OnePortBidir;
    let mut group = c.benchmark_group("ablation_resched");
    group.sample_size(10);
    let plain = Ilha::new(20);
    let resched = WithResched::new(Ilha::new(20));
    println!(
        "[ablation_resched] plain: {:.0}, +resched: {:.0}",
        plain.schedule(&g, &p, m).makespan(),
        resched.schedule(&g, &p, m).makespan()
    );
    group.bench_function("plain", |b| b.iter(|| plain.schedule(&g, &p, m).makespan()));
    group.bench_function("resched", |b| {
        b.iter(|| resched.schedule(&g, &p, m).makespan())
    });
    group.finish();
}

fn ablation_models(c: &mut Criterion) {
    let g = Testbed::Stencil.generate(40, PAPER_C);
    let p = Platform::paper();
    let mut group = c.benchmark_group("ablation_models");
    group.sample_size(10);
    let s = Heft::new();
    for m in CommModel::ALL {
        println!(
            "[ablation_models] {m}: makespan {:.0}",
            s.schedule(&g, &p, m).makespan()
        );
        group.bench_function(m.name(), |b| b.iter(|| s.schedule(&g, &p, m).makespan()));
    }
    group.finish();
}

criterion_group!(
    benches,
    ablation_insertion,
    ablation_comm_order,
    ablation_scan_depth,
    ablation_resched,
    ablation_models
);
criterion_main!(benches);

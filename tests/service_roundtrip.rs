//! End-to-end service test: spawn the real `onesched-svc` daemon, submit a
//! batch of mixed-priority jobs over its TCP socket, and require the
//! streamed results to be bit-identical to the direct runner path — pinned
//! both against the committed schedule-equivalence fixture
//! (`tests/fixtures/schedule_baseline.json`) and against schedules built
//! directly in this process. Also exercises the cache path, the stats
//! endpoint, error handling, and graceful shutdown.

use onesched::prelude::*;
use onesched::regress::{baseline_scheduler, placement_fingerprint, BaselineFile};
use onesched::service::protocol::{
    AckResponse, DagSpec, ErrorResponse, JobSpec, OpProbe, PlatformSpec, ReadyResponse, Request,
    ResultResponse, SchedulerSpec, SimResultResponse, SimSpec, StatsResponse,
};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const FIXTURE: &str = include_str!("fixtures/schedule_baseline.json");

/// Spawn the daemon on an ephemeral port and return it with the bound
/// address from its `ready` announcement.
fn spawn_daemon(workers: usize) -> (Child, String) {
    spawn_daemon_with(workers, &[])
}

fn spawn_daemon_with(workers: usize, extra: &[&str]) -> (Child, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_onesched-svc"))
        .args([
            "serve",
            "--tcp",
            "127.0.0.1:0",
            "--workers",
            &workers.to_string(),
        ])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn onesched-svc");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read ready line");
    let ready: ReadyResponse = serde_json::from_str(line.trim()).expect("parse ready line");
    assert_eq!(ready.op, "ready");
    assert_eq!(ready.workers, workers);
    (child, ready.addr)
}

fn read_response(reader: &mut impl BufRead) -> String {
    let mut line = String::new();
    reader.read_line(&mut line).expect("read response line");
    assert!(line.ends_with('\n'), "truncated response: {line:?}");
    line.trim().to_string()
}

fn send(stream: &mut TcpStream, req: &Request) {
    let line = serde_json::to_string(req).expect("serialize request");
    writeln!(stream, "{line}").expect("send request");
    stream.flush().expect("flush request");
}

#[test]
fn daemon_schedules_bit_identically_and_serves_cache_hits() {
    let fixture: BaselineFile = serde_json::from_str(FIXTURE).expect("parse fixture");
    let (mut child, addr) = spawn_daemon(8);

    let mut stream = TcpStream::connect(&addr).expect("connect to daemon");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());

    // -- Phase A: a mixed-priority batch of every fixture instance at
    // n = 30 (12 jobs, ≥ 8 in flight at once on 8 workers) ------------
    let entries: Vec<_> = fixture.entries.iter().filter(|e| e.n == 30).collect();
    assert_eq!(
        entries.len(),
        12,
        "fixture covers 6 testbeds × 2 schedulers"
    );
    let spec_for = |testbed: &str, scheduler: &str| JobSpec {
        dag: DagSpec {
            kind: "testbed".into(),
            testbed: Some(testbed.to_string()),
            n: Some(30),
            c: None,
            layers: None,
            max_width: None,
            edge_prob: None,
            seed: None,
        },
        platform: None,
        scheduler: match scheduler {
            "HEFT" => None, // exercise the default
            // b unset: defaults to the testbed's paper-best B
            "ILHA" => Some(SchedulerSpec::named("ilha")),
            other => panic!("unexpected fixture scheduler {other}"),
        },
        model: None,
        validate: true,
    };
    for (i, e) in entries.iter().enumerate() {
        let req = Request::submit(
            Some(format!("{}/{}", e.testbed, e.scheduler)),
            (i % 5) as i64, // mixed priorities
            spec_for(&e.testbed, &e.scheduler),
        );
        send(&mut stream, &req);
    }
    let mut results: HashMap<String, ResultResponse> = HashMap::new();
    for _ in 0..entries.len() {
        let line = read_response(&mut reader);
        let r: ResultResponse = serde_json::from_str(&line)
            .unwrap_or_else(|e| panic!("malformed result line {line:?}: {e}"));
        assert_eq!(r.op, "result");
        assert!(results.insert(r.id.clone(), r).is_none(), "duplicate id");
    }
    for e in &entries {
        let id = format!("{}/{}", e.testbed, e.scheduler);
        let r = &results[&id];
        // bit-identical to the recorded seed fixture
        assert_eq!(r.makespan, e.makespan, "{id}: makespan drifted");
        assert_eq!(r.fingerprint, e.fingerprint, "{id}: placements drifted");
        assert_eq!(r.effective_comms, e.effective_comms, "{id}: comms drifted");
        assert_eq!(r.tasks, e.tasks, "{id}: graph shape drifted");
        assert!(!r.cache_hit, "{id}: first submission cannot hit the cache");
        assert_eq!(r.violations, 0, "{id}: validator rejected the schedule");
    }

    // -- Phase A': independently rebuild two schedules in-process and
    // compare against the service results (direct-runner equivalence,
    // not just fixture equivalence) -----------------------------------
    let platform = Platform::paper();
    for (testbed, scheduler) in [("LU", "HEFT"), ("LAPLACE", "ILHA")] {
        let tb = Testbed::ALL
            .iter()
            .copied()
            .find(|t| t.name() == testbed)
            .unwrap();
        let g = tb.generate(30, PAPER_C);
        let direct =
            baseline_scheduler(scheduler, tb).schedule(&g, &platform, CommModel::OnePortBidir);
        let r = &results[&format!("{testbed}/{scheduler}")];
        assert_eq!(
            r.fingerprint,
            format!("{:016x}", placement_fingerprint(&direct)),
            "{testbed}/{scheduler}: service and direct runner disagree"
        );
        assert_eq!(r.makespan, direct.makespan());
    }

    // -- Phase B: resubmitting an identical job hits the cache ---------
    send(
        &mut stream,
        &Request::submit(Some("repeat".into()), 9, spec_for("LU", "HEFT")),
    );
    let repeat: ResultResponse = serde_json::from_str(&read_response(&mut reader)).unwrap();
    assert!(
        repeat.cache_hit,
        "identical resolved job must hit the cache"
    );
    assert_eq!(repeat.fingerprint, results["LU/HEFT"].fingerprint);
    assert_eq!(repeat.makespan, results["LU/HEFT"].makespan);

    // -- Phase B': simulate jobs run construct-then-execute ------------
    // zero perturbation: the executed trace is the schedule, bit-exactly
    send(
        &mut stream,
        &Request::simulate(
            Some("sim-exact".into()),
            9,
            spec_for("LU", "HEFT"),
            SimSpec::default(),
        ),
    );
    let exact: SimResultResponse = serde_json::from_str(&read_response(&mut reader)).unwrap();
    assert_eq!(exact.op, "sim-result");
    assert_eq!(exact.degradation, 1.0, "zero noise replays bit-exactly");
    assert_eq!(exact.executed_makespan, exact.static_makespan);
    assert_eq!(
        exact.fingerprint, results["LU/HEFT"].fingerprint,
        "simulate constructs the same schedule submit does"
    );
    {
        // pin the daemon's executed trace against one rebuilt in-process
        let tb = Testbed::ALL
            .iter()
            .copied()
            .find(|t| t.name() == "LU")
            .unwrap();
        let g = tb.generate(30, PAPER_C);
        let sched = baseline_scheduler("HEFT", tb).schedule(&g, &platform, CommModel::OnePortBidir);
        let expected =
            onesched_sim::trace_fingerprint(&onesched_sim::ExecutionTrace::from_schedule(&sched));
        assert_eq!(
            exact.trace_fingerprint,
            format!("{expected:016x}"),
            "daemon's executed trace differs from the in-process replay"
        );
    }
    // perturbed: same seed twice — identical trace, second from the cache
    // (submitted sequentially so the repeat cannot race the first run)
    let noisy = SimSpec::noise("list-dynamic", 0.2, 11);
    send(
        &mut stream,
        &Request::simulate(
            Some("sim-noisy".into()),
            9,
            spec_for("LU", "HEFT"),
            noisy.clone(),
        ),
    );
    let noisy1: SimResultResponse = serde_json::from_str(&read_response(&mut reader)).unwrap();
    send(
        &mut stream,
        &Request::simulate(
            Some("sim-noisy-again".into()),
            9,
            spec_for("LU", "HEFT"),
            noisy,
        ),
    );
    let noisy2: SimResultResponse = serde_json::from_str(&read_response(&mut reader)).unwrap();
    assert_eq!(noisy1.trace_fingerprint, noisy2.trace_fingerprint);
    assert_ne!(noisy1.trace_fingerprint, exact.trace_fingerprint);
    assert!(noisy1.degradation > 0.0);
    assert_eq!(noisy1.policy, "list-dynamic");
    assert_eq!(noisy1.seed, 11);
    assert!(
        !noisy1.cache_hit && noisy2.cache_hit,
        "repeat sim cache-served"
    );

    // -- Phase C: stats reflect the work -------------------------------
    send(&mut stream, &Request::stats());
    let stats: StatsResponse = serde_json::from_str(&read_response(&mut reader)).unwrap();
    assert_eq!(stats.jobs_done, 16);
    assert_eq!(stats.sims_done, 3);
    assert_eq!(stats.cache_hits, 2, "one submit repeat + one sim repeat");
    assert_eq!(stats.queue_depth, 0);
    assert_eq!(stats.cache_size, 12, "one cache entry per distinct job");
    assert_eq!(stats.sim_cache_size, 2, "one entry per distinct simulation");
    assert_eq!(stats.cache_evictions, 0);
    assert_eq!(stats.errors, 0);
    let latency_schedulers: Vec<&str> =
        stats.latency.iter().map(|l| l.scheduler.as_str()).collect();
    assert!(
        latency_schedulers.contains(&"HEFT"),
        "HEFT latencies tracked: {latency_schedulers:?}"
    );
    assert!(
        latency_schedulers.iter().any(|s| s.starts_with("ILHA(B=")),
        "ILHA latencies tracked: {latency_schedulers:?}"
    );
    let total: u64 = stats.latency.iter().map(|l| l.count).sum();
    assert_eq!(
        total, 14,
        "12 submits + 2 sim constructions; cache hits don't count"
    );
    for l in &stats.latency {
        assert!(l.p50_ms <= l.p90_ms && l.p90_ms <= l.p99_ms && l.p99_ms <= l.max_ms);
    }

    // -- Phase D: invalid submissions get error responses --------------
    let mut bad = spec_for("LU", "HEFT");
    bad.model = Some("quantum-entangled".into());
    send(
        &mut stream,
        &Request::submit(Some("bad-model".into()), 0, bad),
    );
    let err: ErrorResponse = serde_json::from_str(&read_response(&mut reader)).unwrap();
    assert_eq!(err.op, "error");
    assert_eq!(err.id.as_deref(), Some("bad-model"));
    assert!(err.message.contains("unknown model"), "{}", err.message);

    // -- Phase E: graceful shutdown ------------------------------------
    send(&mut stream, &Request::shutdown());
    let line = read_response(&mut reader);
    let probe: OpProbe = serde_json::from_str(&line).unwrap();
    assert_eq!(probe.op, "ok", "shutdown acked: {line}");
    let _: AckResponse = serde_json::from_str(&line).unwrap();
    let deadline = Instant::now() + Duration::from_secs(30);
    let status = loop {
        if let Some(status) = child.try_wait().expect("poll daemon") {
            break status;
        }
        if Instant::now() > deadline {
            let _ = child.kill();
            panic!("daemon did not exit within 30s of shutdown");
        }
        std::thread::sleep(Duration::from_millis(50));
    };
    assert!(status.success(), "daemon exited with {status}");
}

/// Daemon-level backpressure: with `--queue-cap 0` the queue accepts
/// nothing, so every submission is answered with a protocol `error` while
/// control requests keep working — the overflow path end to end, without
/// racing the workers.
#[test]
fn queue_cap_rejections_reach_the_client() {
    let (mut child, addr) = spawn_daemon_with(1, &["--queue-cap", "0"]);
    let mut stream = TcpStream::connect(&addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    for i in 0..3 {
        send(
            &mut stream,
            &Request::submit(
                Some(format!("flood{i}")),
                0,
                JobSpec {
                    dag: DagSpec::testbed(Testbed::Lu, 10),
                    platform: None,
                    scheduler: None,
                    model: None,
                    validate: false,
                },
            ),
        );
    }
    for i in 0..3 {
        let line = read_response(&mut reader);
        let e: ErrorResponse =
            serde_json::from_str(&line).unwrap_or_else(|err| panic!("{line:?}: {err}"));
        assert_eq!(e.id.as_deref(), Some(format!("flood{i}").as_str()));
        assert!(e.message.contains("queue full"), "{}", e.message);
    }
    send(&mut stream, &Request::stats());
    let stats: StatsResponse = serde_json::from_str(&read_response(&mut reader)).unwrap();
    assert_eq!(stats.errors, 3, "rejections are counted");
    assert_eq!(stats.jobs_done, 0);
    send(&mut stream, &Request::shutdown());
    let _ = read_response(&mut reader);
    let deadline = Instant::now() + Duration::from_secs(30);
    while child.try_wait().expect("poll daemon").is_none() {
        if Instant::now() > deadline {
            let _ = child.kill();
            panic!("daemon did not exit");
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// Every kind the registry advertises constructs through the daemon —
/// non-routed kinds on the paper platform, routed kinds on a star
/// topology — then a default-membership portfolio races every non-routed
/// member (each one already cached by its individual submission) and its
/// repeat is answered from the cache in a single hit.
#[test]
fn every_registry_kind_constructs_and_portfolio_repeat_is_cached() {
    let (mut child, addr) = spawn_daemon(4);
    let mut stream = TcpStream::connect(&addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());

    // One submission per concrete catalog kind, parameters pinned exactly
    // as the default portfolio below will pin them for its members, so the
    // portfolio's member cache keys collide with these jobs.
    let job_for = |scheduler: SchedulerSpec, routed: bool| JobSpec {
        dag: DagSpec::testbed(Testbed::Lu, 24),
        platform: routed.then(|| PlatformSpec::routed("star", 5, 1.0)),
        scheduler: Some(scheduler),
        model: None,
        validate: true,
    };
    let kinds: Vec<_> = onesched::registry::list()
        .into_iter()
        .filter(|info| info.kind != "portfolio")
        .collect();
    assert!(kinds.len() >= 13, "full catalog advertised: {kinds:?}");
    for info in &kinds {
        let mut spec = SchedulerSpec::named(info.kind);
        if info.kind == "ilha" || info.kind == "routed-ilha" {
            spec.b = Some(4);
        }
        if info.kind == "random" {
            spec.seed = Some(7);
        }
        send(
            &mut stream,
            &Request::submit(Some(info.kind.to_string()), 0, job_for(spec, info.routed)),
        );
    }
    let mut results: HashMap<String, ResultResponse> = HashMap::new();
    for _ in &kinds {
        let line = read_response(&mut reader);
        let r: ResultResponse = serde_json::from_str(&line)
            .unwrap_or_else(|e| panic!("malformed result line {line:?}: {e}"));
        assert_eq!(r.op, "result", "{}", r.id);
        assert_eq!(r.violations, 0, "{}: validator rejected", r.id);
        assert!(!r.cache_hit, "{}: distinct specs cannot collide", r.id);
        assert!(results.insert(r.id.clone(), r).is_none(), "duplicate id");
    }

    // Default-membership portfolio, parameters matching the submissions
    // above (members inherit the outer b and seed where they need one).
    let portfolio_spec = SchedulerSpec {
        b: Some(4),
        seed: Some(7),
        ..SchedulerSpec::named("portfolio")
    };
    send(
        &mut stream,
        &Request::submit(
            Some("race".into()),
            0,
            job_for(portfolio_spec.clone(), false),
        ),
    );
    let race: ResultResponse = serde_json::from_str(&read_response(&mut reader)).unwrap();
    assert!(!race.cache_hit, "first portfolio run constructs");
    assert_eq!(race.violations, 0);
    let non_routed: Vec<&ResultResponse> = kinds
        .iter()
        .filter(|info| !info.routed)
        .map(|info| &results[info.kind])
        .collect();
    let best = non_routed
        .iter()
        .map(|r| r.makespan)
        .fold(f64::INFINITY, f64::min);
    assert!(
        race.makespan <= best + onesched::sim::EPS,
        "portfolio ({}) lost to the best member ({best})",
        race.makespan
    );
    assert!(
        non_routed
            .iter()
            .any(|r| r.fingerprint == race.fingerprint && r.makespan == race.makespan),
        "portfolio result is bit-identical to one of its members"
    );

    send(
        &mut stream,
        &Request::submit(Some("race-again".into()), 0, job_for(portfolio_spec, false)),
    );
    let again: ResultResponse = serde_json::from_str(&read_response(&mut reader)).unwrap();
    assert!(again.cache_hit, "portfolio repeat is served from the cache");
    assert_eq!(again.fingerprint, race.fingerprint);
    assert_eq!(again.makespan, race.makespan);

    send(&mut stream, &Request::stats());
    let stats: StatsResponse = serde_json::from_str(&read_response(&mut reader)).unwrap();
    assert_eq!(stats.jobs_done, kinds.len() as u64 + 2);
    assert_eq!(
        stats.cache_hits, 1,
        "only the portfolio repeat hits: every member was already cached"
    );
    assert_eq!(
        stats.cache_size,
        kinds.len() + 1,
        "one entry per kind plus the portfolio's own key"
    );
    assert_eq!(stats.errors, 0);
    assert_eq!(stats.portfolio.len(), 1, "one race, one winner");
    let win = &stats.portfolio[0];
    assert_eq!(win.wins, 1);
    assert!(
        results.contains_key(win.scheduler.split('(').next().unwrap_or("")),
        "winner {:?} is a catalog kind",
        win.scheduler
    );

    send(&mut stream, &Request::shutdown());
    let _ = read_response(&mut reader);
    let deadline = Instant::now() + Duration::from_secs(30);
    while child.try_wait().expect("poll daemon").is_none() {
        if Instant::now() > deadline {
            let _ = child.kill();
            panic!("daemon did not exit");
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// A second daemon session covering the workload generators end to end:
/// the smoke batch (every scheduler kind — routed ILHA on a
/// random-connected topology included — a duplicate, and a zero-noise
/// routed simulate) submitted twice — the second round must be answered
/// entirely from the caches.
#[test]
fn smoke_workload_round_trips_and_second_round_is_cached() {
    let (mut child, addr) = spawn_daemon(4);
    let mut stream = TcpStream::connect(&addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());

    let batch: Vec<Request> = onesched::service::workloads::smoke_requests();
    let jobs = batch
        .iter()
        .filter(|r| r.op == "submit" || r.op == "simulate")
        .count();
    for round in 0..2 {
        for req in &batch {
            send(&mut stream, req);
        }
        let mut cached = 0;
        for _ in 0..batch.len() {
            let line = read_response(&mut reader);
            let probe: OpProbe = serde_json::from_str(&line).unwrap();
            match probe.op.as_str() {
                "result" => {
                    let r: ResultResponse = serde_json::from_str(&line).unwrap();
                    assert_eq!(r.violations, 0, "round {round}: {}", r.id);
                    cached += usize::from(r.cache_hit);
                }
                "sim-result" => {
                    let r: SimResultResponse = serde_json::from_str(&line).unwrap();
                    assert_eq!(r.violations, 0, "round {round}: {}", r.id);
                    // the smoke simulate is a zero-noise static-order
                    // replay of a routed multi-hop schedule: bit-exact
                    assert_eq!(r.degradation, 1.0, "round {round}: {}", r.id);
                    assert_eq!(r.executed_makespan, r.static_makespan);
                    cached += usize::from(r.cache_hit);
                }
                "stats" => {}
                other => panic!("round {round}: unexpected op {other} in {line}"),
            }
        }
        if round == 1 {
            assert_eq!(
                cached, jobs,
                "every second-round submission must be served from a cache"
            );
        }
    }
    send(&mut stream, &Request::shutdown());
    let _ = read_response(&mut reader);
    let deadline = Instant::now() + Duration::from_secs(30);
    while child.try_wait().expect("poll daemon").is_none() {
        if Instant::now() > deadline {
            let _ = child.kill();
            panic!("daemon did not exit");
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

//! Profiling is observation-only: this test binary registers the counting
//! global allocator *unconditionally* (no feature flag — integration tests
//! are their own binaries), then re-derives schedules and executions and
//! compares them bit-exactly against artifacts recorded WITHOUT the
//! allocator:
//!
//! * every paper-platform schedule in `tests/fixtures/schedule_baseline.json`
//!   (recorded by `experiments record-baseline`, a non-profiled build) must
//!   match makespan + placement fingerprint exactly;
//! * a discrete-event execution replay must reproduce the static schedule's
//!   trace fingerprint, exactly as the engine promises in non-profiled runs.
//!
//! Together these pin the `profiling` feature's contract: counting
//! allocations never changes an allocation decision, a placement, or a
//! simulated event.

use onesched::exec::{execute, DispatchPolicy, ExecConfig, Perturbation};
use onesched::prelude::*;
use onesched::regress::{
    baseline_platform, baseline_scheduler, placement_fingerprint, BaselineFile,
};
use onesched::sim::{trace_fingerprint, ExecutionTrace};

#[global_allocator]
static COUNTING_ALLOC: onesched::prof::CountingAlloc = onesched::prof::CountingAlloc::new();

const FIXTURE: &str = include_str!("fixtures/schedule_baseline.json");

#[test]
fn counting_allocator_is_live_in_this_binary() {
    let before = onesched::prof::snapshot();
    let g = Testbed::Lu.generate(20, PAPER_C);
    let delta = onesched::prof::snapshot().delta_since(before);
    assert!(onesched::prof::enabled(), "allocator must be registered");
    assert!(delta.allocs > 0, "graph generation allocates");
    assert!(delta.bytes > 0);
    drop(g);
}

#[test]
fn schedules_bit_identical_with_profiling_allocator() {
    let fixture: BaselineFile = serde_json::from_str(FIXTURE).expect("parse fixture");
    let model = CommModel::OnePortBidir;
    let mut checked = 0;
    for e in &fixture.entries {
        let tb = Testbed::ALL
            .iter()
            .copied()
            .find(|t| t.name() == e.testbed)
            .unwrap_or_else(|| panic!("unknown testbed {:?}", e.testbed));
        let g = tb.generate(e.n, PAPER_C);
        let platform = baseline_platform(&e.topology);
        let sched = baseline_scheduler(&e.scheduler, tb).schedule(&g, &platform, model);
        let ctx = format!("{} n={} {} on {}", e.testbed, e.n, e.scheduler, e.topology);
        assert_eq!(sched.makespan(), e.makespan, "{ctx}: makespan drifted");
        assert_eq!(
            format!("{:016x}", placement_fingerprint(&sched)),
            e.fingerprint,
            "{ctx}: placements drifted under the counting allocator"
        );
        checked += 1;
    }
    assert!(checked >= 24, "fixture unexpectedly small ({checked})");
}

#[test]
fn sim_fingerprints_bit_identical_with_profiling_allocator() {
    let p = Platform::paper();
    let m = CommModel::OnePortBidir;
    for tb in [Testbed::Lu, Testbed::Laplace, Testbed::Stencil] {
        let g = tb.generate(20, PAPER_C);
        let sched = Heft::new().schedule(&g, &p, m);
        let static_fp = trace_fingerprint(&ExecutionTrace::from_schedule(&sched));
        // noiseless static-order replay: the engine promises bit-exact
        // agreement with the schedule, profiled or not
        let cfg = ExecConfig {
            policy: DispatchPolicy::StaticOrder,
            perturb: Perturbation::noise(0.0),
            seed: 7,
        };
        let rep = execute(&g, &p, m, &sched, &cfg).expect("executable");
        assert_eq!(rep.trace_fingerprint, static_fp, "{tb}: trace drifted");
        assert_eq!(rep.executed_makespan, sched.makespan());
        // seeded noisy replay: deterministic per seed, so two in-process
        // runs agree bit-exactly even while counters tick underneath
        let noisy = ExecConfig {
            policy: DispatchPolicy::ListDynamic,
            perturb: Perturbation::noise(0.2),
            seed: 7,
        };
        let r1 = execute(&g, &p, m, &sched, &noisy).expect("executable");
        let r2 = execute(&g, &p, m, &sched, &noisy).expect("executable");
        assert_eq!(r1.trace_fingerprint, r2.trace_fingerprint, "{tb}");
        assert_eq!(r1.executed_makespan, r2.executed_makespan, "{tb}");
    }
}

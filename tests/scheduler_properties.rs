//! Property-based tests: every scheduler in the workspace must produce
//! valid schedules on arbitrary layered DAGs under every communication
//! model, never beat the model-independent lower bound, and behave
//! monotonically with respect to the model hierarchy.

use onesched::prelude::*;
use onesched::sim::stats::makespan_lower_bound;
use onesched::sim::validate;
use onesched::testbeds::{random_layered, RandomDagConfig};
use proptest::prelude::*;

fn small_dag_strategy() -> impl Strategy<Value = (u64, usize, usize, f64)> {
    (0u64..1000, 2usize..6, 1usize..6, 0.1f64..0.9)
}

fn schedulers(platform: &Platform) -> Vec<Box<dyn Scheduler>> {
    let mut v: Vec<Box<dyn Scheduler>> = vec![
        Box::new(Heft::new()),
        Box::new(Ilha::new(4)),
        Box::new(Ilha::auto(platform)),
        Box::new(onesched_heuristics::resched::WithResched::new(Heft::new())),
        Box::new(onesched_heuristics::routed::RoutedHeft::new()),
        Box::new(onesched_heuristics::routed::RoutedIlha::new(4)),
    ];
    v.extend(onesched::baselines::all_baselines(99));
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Validity of every scheduler, every model, on random layered DAGs.
    #[test]
    fn all_schedulers_valid_on_random_dags(
        (seed, layers, width, prob) in small_dag_strategy()
    ) {
        let cfg = RandomDagConfig {
            layers,
            max_width: width,
            edge_prob: prob,
            ..Default::default()
        };
        let g = random_layered(&cfg, seed);
        let p = Platform::paper();
        for s in schedulers(&p) {
            for m in CommModel::ALL {
                let sched = s.schedule(&g, &p, m);
                let v = validate(&g, &p, m, &sched);
                prop_assert!(v.is_empty(), "{} under {m}: {v:?}", s.name());
                prop_assert!(sched.is_complete());
            }
        }
    }

    /// No scheduler beats the critical-path/area lower bound.
    #[test]
    fn makespans_respect_lower_bound(
        (seed, layers, width, prob) in small_dag_strategy()
    ) {
        let cfg = RandomDagConfig {
            layers,
            max_width: width,
            edge_prob: prob,
            ..Default::default()
        };
        let g = random_layered(&cfg, seed);
        let p = Platform::paper();
        let lb = makespan_lower_bound(&g, &p);
        for s in schedulers(&p) {
            let sched = s.schedule(&g, &p, CommModel::OnePortBidir);
            prop_assert!(
                sched.makespan() >= lb - 1e-6,
                "{} makespan {} below lower bound {lb}",
                s.name(),
                sched.makespan()
            );
        }
    }

    /// HEFT under macro-dataflow is never worse than HEFT under the
    /// stricter one-port models *for the same heuristic decisions' lower
    /// bound*: the macro-dataflow makespan is a lower bound on what the
    /// one-port schedule of the same heuristic achieves... not in general
    /// (heuristics are not monotone), but the *validator* relationship
    /// holds: a valid bidir schedule with no port overlaps is also valid
    /// under macro-dataflow.
    #[test]
    fn one_port_schedules_are_macro_valid(
        (seed, layers, width, prob) in small_dag_strategy()
    ) {
        let cfg = RandomDagConfig {
            layers,
            max_width: width,
            edge_prob: prob,
            ..Default::default()
        };
        let g = random_layered(&cfg, seed);
        let p = Platform::paper();
        let sched = Heft::new().schedule(&g, &p, CommModel::OnePortBidir);
        prop_assert!(validate(&g, &p, CommModel::MacroDataflow, &sched).is_empty());
        // ... and the unidirectional schedule is valid under bidir:
        let sched = Heft::new().schedule(&g, &p, CommModel::OnePortUnidir);
        prop_assert!(validate(&g, &p, CommModel::OnePortBidir, &sched).is_empty());
        prop_assert!(validate(&g, &p, CommModel::MacroDataflow, &sched).is_empty());
    }

    /// The pruned candidate scan of `best_placement` (bound ordering,
    /// committed-state disqualification, mid-evaluation abort) returns the
    /// exact placement the seed's exhaustive scan would have picked —
    /// including the lowest-processor-id tie-break — on random layered DAGs
    /// under every communication model, as the schedule is built task by
    /// task in priority order.
    #[test]
    fn pruned_best_placement_matches_exhaustive_scan(
        (seed, layers, width, prob) in small_dag_strategy()
    ) {
        use onesched::heuristics::{best_placement, commit_placement, place_on};
        use onesched::sim::{ResourcePool, Schedule};
        use onesched::dag::TopoOrder;

        let cfg = RandomDagConfig {
            layers,
            max_width: width,
            edge_prob: prob,
            ..Default::default()
        };
        let g = random_layered(&cfg, seed);
        let p = Platform::paper();
        let policy = PlacementPolicy::paper();
        for m in CommModel::ALL {
            let mut pool = ResourcePool::new(p.num_procs(), m);
            let mut sched = Schedule::with_tasks(g.num_tasks());
            for &task in TopoOrder::new(&g).order() {
                // the seed's exhaustive scan: evaluate every processor in
                // id order, keep strict EFT improvements only
                let mut want: Option<onesched::heuristics::TentativePlacement> = None;
                for proc in p.procs() {
                    let tp = place_on(&g, &p, &sched, pool.begin(), task, proc, policy);
                    let better = match &want {
                        None => true,
                        Some(b) => tp.finish < b.finish - 1e-6,
                    };
                    if better {
                        want = Some(tp);
                    }
                }
                let want = want.unwrap();
                let got = best_placement(&g, &p, &pool, &sched, task, policy);
                prop_assert_eq!(got.proc, want.proc,
                    "task {task} under {m}: pruned chose {:?}, exhaustive {:?}",
                    got.proc, want.proc);
                prop_assert_eq!(got.finish, want.finish);
                prop_assert_eq!(got.start, want.start);
                commit_placement(&mut pool, &mut sched, got);
            }
        }
    }

    /// The pruned routed candidate scan (`best_routed_placement`: per-hop
    /// no-contention bound ordering, committed send-gap /
    /// receive-serialization disqualification, mid-evaluation abort)
    /// returns the exact placement the exhaustive id-order routed scan
    /// picks — including the lowest-processor-id tie-break — on random
    /// layered DAGs × random connected topologies under every
    /// communication model, as the schedule is built task by task.
    #[test]
    fn pruned_routed_placement_matches_exhaustive_scan(
        (seed, layers, width, prob) in small_dag_strategy(),
        topo_seed in 0u64..1_000,
        procs in 2usize..9,
        extra_prob in 0.0f64..0.6,
    ) {
        use onesched::heuristics::routed::{
            best_routed_placement, commit_routed, place_on_routed, RoutedPlacement,
        };
        use onesched::platform::topology::random_connected;
        use onesched::platform::RoutingTable;
        use onesched::sim::{ResourcePool, Schedule, EPS};
        use onesched::dag::TopoOrder;

        let cfg = RandomDagConfig {
            layers,
            max_width: width,
            edge_prob: prob,
            ..Default::default()
        };
        let g = random_layered(&cfg, seed);
        let cts: Vec<f64> = (0..procs).map(|i| [6.0, 10.0, 15.0][i % 3]).collect();
        let p = random_connected(cts, 1.0, extra_prob, topo_seed).unwrap();
        let routes = RoutingTable::new(&p);
        prop_assert!(routes.first_unreachable().is_none());
        let policy = PlacementPolicy::paper();
        for m in CommModel::ALL {
            let mut pool = ResourcePool::new(p.num_procs(), m);
            let mut sched = Schedule::with_tasks(g.num_tasks());
            for &task in TopoOrder::new(&g).order() {
                // the exhaustive scan: evaluate every processor in id
                // order, keep strict EFT improvements only (ties fall to
                // the lowest processor id by iteration order)
                let mut want: Option<RoutedPlacement> = None;
                for proc in p.procs() {
                    let rp = place_on_routed(
                        &g, &p, &routes, &sched, pool.begin(), task, proc, policy,
                    );
                    let better = match &want {
                        None => true,
                        Some(b) => rp.finish < b.finish - EPS,
                    };
                    if better {
                        want = Some(rp);
                    }
                }
                let want = want.unwrap();
                let got = best_routed_placement(&g, &p, &routes, &pool, &sched, task, policy);
                prop_assert_eq!(got.proc, want.proc,
                    "task {} under {}: pruned chose {:?}, exhaustive {:?}",
                    task, m, got.proc, want.proc);
                prop_assert_eq!(got.finish, want.finish);
                prop_assert_eq!(got.start, want.start);
                prop_assert_eq!(got.comms.len(), want.comms.len());
                commit_routed(&mut pool, &mut sched, got);
            }
        }
    }

    /// Schedulers are deterministic: same input, same schedule.
    #[test]
    fn schedulers_are_deterministic(
        (seed, layers, width, prob) in small_dag_strategy()
    ) {
        let cfg = RandomDagConfig {
            layers,
            max_width: width,
            edge_prob: prob,
            ..Default::default()
        };
        let g = random_layered(&cfg, seed);
        let p = Platform::paper();
        for s in [&Heft::new() as &dyn Scheduler, &Ilha::new(7)] {
            let a = s.schedule(&g, &p, CommModel::OnePortBidir);
            let b = s.schedule(&g, &p, CommModel::OnePortBidir);
            prop_assert_eq!(a.makespan(), b.makespan());
            for t in g.tasks() {
                prop_assert_eq!(a.alloc(t), b.alloc(t));
            }
        }
    }
}

/// Six testbeds × four models × {HEFT, ILHA(best B)} — the full validity
/// matrix at a small size (48 schedules through the independent validator).
#[test]
fn testbed_model_validity_matrix() {
    let p = Platform::paper();
    for tb in Testbed::ALL {
        let g = tb.generate(6, PAPER_C);
        for m in CommModel::ALL {
            for s in [
                &Heft::new() as &dyn Scheduler,
                &Ilha::new(tb.paper_best_b()),
            ] {
                let sched = s.schedule(&g, &p, m);
                let v = validate(&g, &p, m, &sched);
                assert!(v.is_empty(), "{} on {tb} under {m}: {v:?}", s.name());
            }
        }
    }
}

/// The stricter the model, the larger (or equal) the best-found makespan,
/// statistically: check macro <= bidir <= unidir for HEFT across testbeds
/// (HEFT re-plans per model, so each schedule is tailored to its model).
#[test]
fn model_strictness_ordering_for_heft() {
    let p = Platform::paper();
    for tb in Testbed::ALL {
        let g = tb.generate(8, PAPER_C);
        let mk = |m| Heft::new().schedule(&g, &p, m).makespan();
        let macro_mk = mk(CommModel::MacroDataflow);
        let bidir = mk(CommModel::OnePortBidir);
        let unidir = mk(CommModel::OnePortUnidir);
        // Greedy heuristics are not monotone in the constraint set — a
        // stricter model can steer EFT to a luckier allocation — so this is
        // a sanity band, not a theorem: the strict models must not *win* by
        // a large margin.
        assert!(
            macro_mk <= bidir * 1.10,
            "{tb}: macro {macro_mk} vs bidir {bidir}"
        );
        assert!(
            bidir <= unidir * 1.10,
            "{tb}: bidir {bidir} vs unidir {unidir}"
        );
    }
}

//! Same-seed determinism of `experiments league`: two runs with identical
//! seeds must emit byte-identical `league.csv` and `league_rank.csv` files
//! (the CI league-smoke job enforces the same diff on release builds), and
//! a different seed must actually move the numbers — a constant output
//! would pass the diff while measuring nothing.

use std::path::PathBuf;
use std::process::Command;

fn run_league(tag: &str, seed: u64) -> (String, String) {
    let mut out = std::env::temp_dir();
    out.push(format!("onesched-league-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&out);
    let status = Command::new(env!("CARGO_BIN_EXE_experiments"))
        .args([
            "--out",
            out.to_str().expect("utf-8 temp path"),
            "--sizes",
            "8",
            "--seed",
            &seed.to_string(),
            "league",
        ])
        .status()
        .expect("spawn experiments league");
    assert!(status.success(), "league run failed");
    let read = |name: &str| -> String {
        let mut p = PathBuf::from(&out);
        p.push(name);
        std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("read {}: {e}", p.display()))
    };
    let result = (read("league.csv"), read("league_rank.csv"));
    let _ = std::fs::remove_dir_all(&out);
    result
}

#[test]
fn same_seed_league_runs_are_byte_identical() {
    let (csv_a, rank_a) = run_league("a", 42);
    let (csv_b, rank_b) = run_league("b", 42);
    assert_eq!(csv_a, csv_b, "league.csv must be seed-deterministic");
    assert_eq!(rank_a, rank_b, "league_rank.csv must be seed-deterministic");

    // sanity on the table shape: a header plus one row per
    // scheduler × testbed × model cell, every scheduler ranked
    let rows = csv_a.lines().count() - 1;
    let ranked = rank_a.lines().count() - 1;
    assert_eq!(rows % ranked, 0, "cells cover every scheduler evenly");
    assert!(ranked >= 11, "the full catalog is ranked (got {ranked})");

    let (csv_c, _) = run_league("c", 7);
    assert_ne!(csv_a, csv_c, "a different seed must move the measurements");
}

//! Schedule-equivalence regression: HEFT and ILHA must produce bit-identical
//! schedules to the recorded seed fixture on every testbed at n ∈ {30, 60},
//! and the routed schedulers (HEFT-routed, ILHA-routed) on every testbed at
//! n = 12 over each star/ring/line baseline topology.
//!
//! The placement hot path is under active performance work (indexed
//! timelines, pruned candidate scans — direct *and* routed); this test
//! guarantees that such work can never *silently* change a schedule. If a
//! change is intentional, regenerate the fixture with
//! `cargo run --release --bin experiments -- record-baseline`
//! and say so in the PR (CI's fixture-drift gate enforces the same).

use onesched::prelude::*;
use onesched::regress::{
    baseline_platform, baseline_scheduler, placement_fingerprint, BaselineFile, BASELINE_SCHEMA,
    BASELINE_TOPOLOGIES, ROUTED_BASELINE_N,
};

const FIXTURE: &str = include_str!("fixtures/schedule_baseline.json");

#[test]
fn schedules_match_recorded_seed_fixture() {
    let fixture: BaselineFile = serde_json::from_str(FIXTURE).expect("parse fixture");
    assert_eq!(fixture.schema, BASELINE_SCHEMA);
    // 6 testbeds × 2 sizes × 2 schedulers on the paper platform, plus
    // 3 topologies × 6 testbeds × 2 routed schedulers at n = 12
    assert_eq!(
        fixture.entries.len(),
        24 + BASELINE_TOPOLOGIES.len() * 6 * 2,
        "fixture must cover every instance"
    );
    assert!(
        BASELINE_TOPOLOGIES
            .iter()
            .all(|t| fixture.entries.iter().any(|e| e.topology == *t)),
        "every routed topology must appear"
    );

    let model = CommModel::OnePortBidir;
    for e in &fixture.entries {
        let tb = Testbed::ALL
            .iter()
            .copied()
            .find(|t| t.name() == e.testbed)
            .unwrap_or_else(|| panic!("unknown testbed {:?} in fixture", e.testbed));
        let g = tb.generate(e.n, PAPER_C);
        assert_eq!(
            g.num_tasks(),
            e.tasks,
            "{} n={} graph shape",
            e.testbed,
            e.n
        );
        if e.topology != "paper" {
            assert_eq!(e.n, ROUTED_BASELINE_N, "routed entries pin one size");
        }
        let platform = baseline_platform(&e.topology);
        let sched = baseline_scheduler(&e.scheduler, tb).schedule(&g, &platform, model);
        let ctx = format!("{} n={} {} on {}", e.testbed, e.n, e.scheduler, e.topology);
        // Exact comparisons throughout: the fixture pins bit-identical
        // schedules, not approximately-equal makespans.
        assert_eq!(sched.makespan(), e.makespan, "{ctx}: makespan drifted");
        assert_eq!(
            format!("{:016x}", placement_fingerprint(&sched)),
            e.fingerprint,
            "{ctx}: per-task placements drifted"
        );
        assert_eq!(
            sched.num_effective_comms(),
            e.effective_comms,
            "{ctx}: communication count drifted"
        );
    }
}

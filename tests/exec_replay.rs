//! Execution-engine acceptance tests: zero-perturbation replay is
//! bit-exact against every schedule-equivalence fixture instance, random
//! valid schedules replay within tolerance and execute validly under both
//! dispatch policies, same-seed perturbed runs are deterministic, and
//! deliberately corrupted schedules make the runtime checks fire.

use onesched::exec::{
    check_replay, execute, DispatchPolicy, ExecConfig, Perturbation, ReplayViolation,
};
use onesched::prelude::*;
use onesched::regress::{baseline_platform, baseline_scheduler, BaselineFile, BASELINE_TOPOLOGIES};
use onesched_sim::{trace_fingerprint, validate, ExecutionTrace, Schedule};
use onesched_testbeds::{random_layered, RandomDagConfig};
use proptest::prelude::*;

const FIXTURE: &str = include_str!("fixtures/schedule_baseline.json");

/// Every fixture schedule — 6 testbeds × 2 sizes × 2 schedulers on the
/// paper platform, plus the routed star/ring/line entries — replays
/// bit-exactly: executed start/finish equals the static placement for every
/// task, the executed makespan equals the static makespan, and the trace
/// fingerprint — which also covers every communication hop's times
/// (multi-hop store-and-forward chains included) — is pinned to the
/// schedule's own trace fingerprint.
#[test]
fn zero_perturbation_replay_is_bit_exact_on_every_fixture() {
    let fixture: BaselineFile = serde_json::from_str(FIXTURE).expect("parse fixture");
    assert_eq!(
        fixture.entries.len(),
        24 + BASELINE_TOPOLOGIES.len() * 6 * 2
    );
    let model = CommModel::OnePortBidir;
    for e in &fixture.entries {
        let tb = Testbed::ALL
            .iter()
            .copied()
            .find(|t| t.name() == e.testbed)
            .expect("fixture testbed");
        let g = tb.generate(e.n, PAPER_C);
        let platform = baseline_platform(&e.topology);
        let sched = baseline_scheduler(&e.scheduler, tb).schedule(&g, &platform, model);
        let ctx = format!("{} n={} {} on {}", e.testbed, e.n, e.scheduler, e.topology);

        let rep = execute(&g, &platform, model, &sched, &ExecConfig::replay())
            .unwrap_or_else(|err| panic!("{ctx}: {err}"));
        assert_eq!(rep.executed_makespan, e.makespan, "{ctx}: makespan");
        assert_eq!(rep.degradation(), 1.0, "{ctx}: degradation");
        for v in g.tasks() {
            let stat = sched.task(v).expect("complete schedule");
            let exec = rep.trace.task(v).expect("complete trace");
            assert_eq!(exec.start, stat.start, "{ctx}: task {v} start");
            assert_eq!(exec.finish, stat.finish, "{ctx}: task {v} finish");
            assert_eq!(exec.proc, stat.proc, "{ctx}: task {v} proc");
        }
        assert_eq!(
            rep.trace_fingerprint,
            trace_fingerprint(&ExecutionTrace::from_schedule(&sched)),
            "{ctx}: trace fingerprint (comm times included)"
        );
        assert!(
            check_replay(&g, &platform, model, &sched, 0.0).is_empty(),
            "{ctx}: runtime checks must accept a valid schedule"
        );
    }
}

fn small_dag(layers: usize, width: usize, edge_prob: f64, seed: u64) -> onesched::dag::TaskGraph {
    random_layered(
        &RandomDagConfig {
            layers,
            max_width: width,
            edge_prob,
            ..RandomDagConfig::default()
        },
        seed,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Routed schedules on random connected topologies replay cleanly at
    /// zero noise, and the executed trace never uses a link absent from
    /// the routing table: every executed hop rides a finite direct link of
    /// the platform (relays never teleport), under every model.
    #[test]
    fn routed_replays_use_only_existing_links(
        layers in 2usize..6,
        width in 1usize..5,
        edge_prob in 0.2f64..0.9,
        seed in 0u64..1_000,
        topo_seed in 0u64..1_000,
        procs in 3usize..8,
        extra_prob in 0.0f64..0.5,
        model_ix in 0usize..4,
        use_ilha in 0u8..2,
    ) {
        use onesched::heuristics::routed::{RoutedHeft, RoutedIlha};
        use onesched::platform::topology::random_connected;

        let g = small_dag(layers, width, edge_prob, seed);
        let cts: Vec<f64> = (0..procs).map(|i| [1.0, 2.0, 3.0][i % 3]).collect();
        let p = random_connected(cts, 1.0, extra_prob, topo_seed).unwrap();
        let model = CommModel::ALL[model_ix];
        let sched = if use_ilha == 1 {
            RoutedIlha::new(4).try_schedule(&g, &p, model).unwrap()
        } else {
            RoutedHeft::new().try_schedule(&g, &p, model).unwrap()
        };
        prop_assert!(validate(&g, &p, model, &sched).is_empty());
        let tol = onesched_sim::EPS * (g.num_tasks() + sched.comms().len()) as f64;
        let v = check_replay(&g, &p, model, &sched, tol);
        prop_assert!(v.is_empty(), "unexpected runtime violations: {v:?}");
        let rep = execute(&g, &p, model, &sched, &ExecConfig::replay()).unwrap();
        prop_assert!(rep.trace.is_complete());
        for hop in rep.trace.comms() {
            prop_assert!(
                hop.from == hop.to || p.link(hop.from, hop.to).is_finite(),
                "executed hop {:?} -> {:?} uses a link absent from the \
                 routing table", hop.from, hop.to
            );
        }
        // ... and under perturbation too: noise shifts hops in time but
        // must never reroute them onto non-existent links
        let cfg = ExecConfig {
            policy: DispatchPolicy::StaticOrder,
            perturb: Perturbation { task_sigma: 0.3, bw_degradation: 0.3, outage_prob: 0.3, outage_frac: 0.1 },
            seed: topo_seed ^ seed,
        };
        let noisy = execute(&g, &p, model, &sched, &cfg).unwrap();
        for hop in noisy.trace.comms() {
            prop_assert!(hop.from == hop.to || p.link(hop.from, hop.to).is_finite());
        }
    }

    /// Random DAG × scheduler × model: the zero-noise replay reproduces
    /// the static schedule (within the schedulers' EPS packing tolerance,
    /// scaled by activity count) and never reports runtime violations.
    #[test]
    fn random_valid_schedules_replay_cleanly(
        layers in 2usize..7,
        width in 1usize..6,
        edge_prob in 0.2f64..0.9,
        seed in 0u64..1_000,
        model_ix in 0usize..4,
        use_ilha in 0u8..2,
    ) {
        let g = small_dag(layers, width, edge_prob, seed);
        let p = Platform::paper();
        let model = CommModel::ALL[model_ix];
        let sched = if use_ilha == 1 {
            Ilha::new(4).schedule(&g, &p, model)
        } else {
            Heft::new().schedule(&g, &p, model)
        };
        prop_assert!(validate(&g, &p, model, &sched).is_empty());
        let tol = onesched_sim::EPS * (g.num_tasks() + sched.comms().len()) as f64;
        let v = check_replay(&g, &p, model, &sched, tol);
        prop_assert!(v.is_empty(), "unexpected runtime violations: {v:?}");
        // the executed makespan can undercut the static one only by slack
        let rep = execute(&g, &p, model, &sched, &ExecConfig::replay()).unwrap();
        prop_assert!(rep.executed_makespan <= sched.makespan() + tol);
    }

    /// Same seed, same executed trace — for both policies, under real
    /// noise with outages; and the dynamic policy's execution still
    /// satisfies the communication model it ran under.
    #[test]
    fn perturbed_execution_is_deterministic_and_model_conforming(
        layers in 2usize..6,
        width in 1usize..5,
        edge_prob in 0.2f64..0.9,
        seed in 0u64..1_000,
        exec_seed in 0u64..1_000,
        policy_ix in 0usize..2,
    ) {
        let g = small_dag(layers, width, edge_prob, seed);
        let p = Platform::paper();
        let model = CommModel::OnePortBidir;
        let sched = Heft::new().schedule(&g, &p, model);
        let cfg = ExecConfig {
            policy: [DispatchPolicy::StaticOrder, DispatchPolicy::ListDynamic][policy_ix],
            perturb: Perturbation {
                task_sigma: 0.25,
                bw_degradation: 0.3,
                outage_prob: 0.3,
                outage_frac: 0.1,
            },
            seed: exec_seed,
        };
        let a = execute(&g, &p, model, &sched, &cfg).unwrap();
        let b = execute(&g, &p, model, &sched, &cfg).unwrap();
        prop_assert_eq!(a.trace_fingerprint, b.trace_fingerprint);
        prop_assert!(a.trace.is_complete());
        // port exclusivity held at runtime: the executed trace has no
        // overlapping sends/receives (durations are perturbed, so only the
        // port constraints of the validator are meaningful here)
        let as_sched = a.trace.to_schedule();
        let port_violations: Vec<_> = validate(&g, &p, model, &as_sched)
            .into_iter()
            .filter(|v| matches!(
                v,
                onesched_sim::ScheduleViolation::SendOverlap { .. }
                    | onesched_sim::ScheduleViolation::RecvOverlap { .. }
                    | onesched_sim::ScheduleViolation::ComputeOverlap { .. }
            ))
            .collect();
        prop_assert!(port_violations.is_empty(), "{port_violations:?}");
    }

    /// Corrupting a valid schedule makes the runtime checks fire: an
    /// understated duration drifts its activity's finish, and forcing two
    /// port-sharing transfers to overlap forces the later one off its
    /// recorded times.
    #[test]
    fn corrupted_schedules_fire_runtime_checks(
        layers in 2usize..6,
        width in 2usize..6,
        edge_prob in 0.4f64..1.0,
        seed in 0u64..1_000,
        victim in 0usize..1_000,
    ) {
        let g = small_dag(layers, width, edge_prob, seed);
        let p = Platform::paper();
        let model = CommModel::OnePortBidir;
        let sched = Heft::new().schedule(&g, &p, model);

        // corruption 1: understate one task's duration by half
        let v_task = victim % g.num_tasks();
        let mut bad = Schedule::with_tasks(g.num_tasks());
        for tp in sched.task_placements() {
            let mut tp = *tp;
            if tp.task.index() == v_task {
                tp.finish = tp.start + (tp.finish - tp.start) * 0.5;
            }
            bad.place_task(tp);
        }
        for c in sched.comms() {
            bad.place_comm(*c);
        }
        let v = check_replay(&g, &p, model, &bad, 1e-9);
        prop_assert!(
            v.iter().any(|x| matches!(x, ReplayViolation::TaskDrift { .. })),
            "understated duration must drift: {v:?}"
        );

        // corruption 2: pull one effective transfer to time zero so it
        // claims the port before its data exists (and overlaps whatever
        // else the port carries) — the replay must push it later
        let effective: Vec<usize> = sched
            .comms()
            .iter()
            .enumerate()
            .filter(|(_, c)| c.finish - c.start > onesched_sim::EPS && c.start > 0.0)
            .map(|(i, _)| i)
            .collect();
        if let Some(&ci) = effective.get(victim % effective.len().max(1)) {
            let mut bad = Schedule::with_tasks(g.num_tasks());
            for tp in sched.task_placements() {
                bad.place_task(*tp);
            }
            for (i, c) in sched.comms().iter().enumerate() {
                let mut c = *c;
                if i == ci {
                    let dur = c.finish - c.start;
                    c.start = 0.0;
                    c.finish = dur;
                }
                bad.place_comm(c);
            }
            let v = check_replay(&g, &p, model, &bad, 1e-9);
            prop_assert!(
                v.iter().any(|x| matches!(
                    x,
                    ReplayViolation::CommDrift { .. } | ReplayViolation::Infeasible(_)
                )),
                "a transfer scheduled before its data exists must drift: {v:?}"
            );
        }
    }
}

//! The worked examples of the paper, verified end-to-end:
//! Figure 1 (the fork makespan gap), the §4.4 toy example (Figures 3–4),
//! and the §5.2 platform arithmetic.

use onesched::exact::bnb::branch_and_bound;
use onesched::exact::fork::ForkInstance;
use onesched::prelude::*;
use onesched::sim::validate;
use onesched_heuristics::distribution::optimal_distribution;
use onesched_platform::bounds;

/// §2.3, Figure 1: fork with six unit children, unit messages, five
/// same-speed processors, homogeneous unit links.
#[test]
fn figure1_macro_vs_one_port_gap() {
    let g = onesched::testbeds::fork(1.0, &[(1.0, 1.0); 6]);
    let p = Platform::homogeneous(5);

    // Macro-dataflow: assign v0 + two children to P0, one child to each
    // other processor; all four messages go in parallel -> makespan 3.
    let macro_opt = branch_and_bound(&g, &p, CommModel::MacroDataflow, 20_000_000);
    assert!(macro_opt.optimal);
    assert_eq!(macro_opt.makespan, 3.0);

    // One-port: the same graph cannot beat 5 (three children local, three
    // messages serialized). Both the fork solver and the general B&B agree.
    let fork_opt = ForkInstance::from_graph(&g).optimal_makespan();
    assert_eq!(fork_opt, 5.0);
    let bnb_opt = branch_and_bound(&g, &p, CommModel::OnePortBidir, 20_000_000);
    assert!(bnb_opt.optimal);
    assert_eq!(bnb_opt.makespan, 5.0);

    // The naive "same allocation as macro-dataflow" schedule costs 6
    // (1 + four serialized messages + 1), as the paper notes.
    // (The heuristics must not do worse than that.)
    let heft = Heft::new().schedule(&g, &p, CommModel::OnePortBidir);
    assert!(validate(&g, &p, CommModel::OnePortBidir, &heft).is_empty());
    assert!(heft.makespan() <= 6.0 + 1e-9);
    assert!(heft.makespan() >= 5.0 - 1e-9);
}

/// §4.4, Figures 3–4: on the toy graph ILHA produces no more communications
/// and no worse a makespan than HEFT, thanks to its zero-communication scan.
#[test]
fn toy_example_ilha_beats_or_matches_heft() {
    let g = onesched::testbeds::toy();
    let p = Platform::homogeneous(2);
    let m = CommModel::OnePortBidir;

    let heft = Heft::new().schedule(&g, &p, m);
    let ilha = Ilha::new(8).schedule(&g, &p, m);
    assert!(validate(&g, &p, m, &heft).is_empty());
    assert!(validate(&g, &p, m, &ilha).is_empty());

    assert!(ilha.makespan() <= heft.makespan() + 1e-9);
    assert!(ilha.num_effective_comms() <= heft.num_effective_comms());
    // The figure's ILHA schedule: a-tasks with a0, b-tasks with b0, at most
    // the two shared children communicate.
    assert!(ilha.num_effective_comms() <= 2);
    // 10 unit tasks on 2 unit processors: no schedule beats 5.
    assert!(ilha.makespan() >= 5.0 - 1e-9);
}

/// The toy example's ILHA schedule keeps each private fork family on its
/// root's processor (the mechanism behind the communication reduction).
#[test]
fn toy_example_families_stay_home() {
    use onesched::testbeds::toy_ids;
    let g = onesched::testbeds::toy();
    let p = Platform::homogeneous(2);
    let ilha = Ilha::new(8).schedule(&g, &p, CommModel::OnePortBidir);
    let a_home = ilha.alloc(toy_ids::A0).unwrap();
    let b_home = ilha.alloc(toy_ids::B0).unwrap();
    assert_ne!(a_home, b_home, "roots spread over both processors");
    for t in toy_ids::A {
        assert_eq!(ilha.alloc(t), Some(a_home), "a-child moved off its root");
    }
    for t in toy_ids::B {
        assert_eq!(ilha.alloc(t), Some(b_home), "b-child moved off its root");
    }
}

/// §5.2: the experimental platform's arithmetic — speedup bound 7.6,
/// perfect-balance chunk B = 38 distributed 5/5/5/5/5/3/3/3/2/2, 38 unit
/// tasks in 30 time units versus 228 sequentially.
#[test]
fn section52_platform_arithmetic() {
    let p = Platform::paper();
    assert!((bounds::speedup_upper_bound(&p) - 7.6).abs() < 1e-12);
    assert_eq!(bounds::perfect_balance_chunk(&p), Some(38));
    assert_eq!(
        optimal_distribution(&p, 38),
        vec![5, 5, 5, 5, 5, 3, 3, 3, 2, 2]
    );
    assert!((bounds::ideal_parallel_time(&p, 38.0) - 30.0).abs() < 1e-12);
    assert!((bounds::sequential_time(&p, 38.0) - 228.0).abs() < 1e-12);
}

/// §5.3's FORK-JOIN analysis: the speedup is bounded by `w·t/c + 1 = 1.6`
/// on the paper platform, and both heuristics approach it from below.
#[test]
fn forkjoin_speedup_bound() {
    let p = Platform::paper();
    let m = CommModel::OnePortBidir;
    let mut last = 0.0;
    for n in [50usize, 100, 200] {
        let g = Testbed::ForkJoin.generate(n, PAPER_C);
        let heft = Heft::new().schedule(&g, &p, m);
        let ilha = Ilha::new(38).schedule(&g, &p, m);
        let (hs, is) = (heft.speedup(&g, &p), ilha.speedup(&g, &p));
        assert!(
            (hs - is).abs() < 1e-9,
            "HEFT and ILHA coincide on FORK-JOIN"
        );
        assert!(hs <= 1.6 + 1e-9, "speedup bound w*t/c + 1");
        assert!(hs >= last - 1e-9, "speedup grows with problem size");
        last = hs;
    }
    assert!(last > 1.5, "approaches the 1.6 bound (paper: 1.58)");
}

//! Portfolio-equals-best-member regression: a `portfolio[heft,ilha(b=B)]`
//! schedule must be bit-identical to whichever member the recorded seed
//! fixture says is better — smaller makespan, ties (within the sim's EPS)
//! to the lexicographically smaller canonical member label. This pins the
//! portfolio's winner selection against the same fixture schedules the
//! schedule-equivalence gate pins, so a tie-break change can never slip
//! through as "still a valid best member".

use onesched::prelude::*;
use onesched::registry::{self, SchedulerSpec};
use onesched::regress::{placement_fingerprint, BaselineFile};
use onesched::sim::EPS;

const FIXTURE: &str = include_str!("fixtures/schedule_baseline.json");

#[test]
fn portfolio_schedule_is_the_fixtures_best_member_bit_exactly() {
    let fixture: BaselineFile = serde_json::from_str(FIXTURE).expect("parse fixture");
    let model = CommModel::OnePortBidir;
    let platform = Platform::paper();
    // The paper-platform entries pair up (HEFT, ILHA) per (testbed, n).
    let paper: Vec<_> = fixture
        .entries
        .iter()
        .filter(|e| e.topology == "paper")
        .collect();
    assert_eq!(paper.len(), 24, "fixture covers every paper instance");
    for pair in paper.chunks(2) {
        let (heft_e, ilha_e) = (pair[0], pair[1]);
        assert_eq!(heft_e.scheduler, "HEFT");
        assert_eq!(ilha_e.scheduler, "ILHA");
        assert_eq!((heft_e.n, &heft_e.testbed), (ilha_e.n, &ilha_e.testbed));
        let tb = Testbed::ALL
            .iter()
            .copied()
            .find(|t| t.name() == heft_e.testbed)
            .unwrap_or_else(|| panic!("unknown testbed {:?}", heft_e.testbed));
        let g = tb.generate(heft_e.n, PAPER_C);

        let spec = SchedulerSpec::portfolio(vec![
            SchedulerSpec::heft(),
            SchedulerSpec::ilha(tb.paper_best_b()),
        ]);
        let portfolio = registry::build(&spec).expect("portfolio builds");
        let sched = portfolio.schedule(&g, &platform, model);

        // The winner the fixture predicts, by the registry's own rule:
        // smaller makespan; within EPS, "heft" < "ilha(b=N)" wins.
        let best = if ilha_e.makespan < heft_e.makespan - EPS {
            ilha_e
        } else {
            heft_e
        };
        let ctx = format!("{} n={}", heft_e.testbed, heft_e.n);
        assert_eq!(
            sched.makespan(),
            best.makespan,
            "{ctx}: portfolio did not return the best member's makespan"
        );
        assert_eq!(
            format!("{:016x}", placement_fingerprint(&sched)),
            best.fingerprint,
            "{ctx}: portfolio schedule is not the best member's bit-exactly"
        );
    }
}

#[test]
fn default_full_catalog_portfolio_never_loses_to_heft_or_ilha() {
    let fixture: BaselineFile = serde_json::from_str(FIXTURE).expect("parse fixture");
    let model = CommModel::OnePortBidir;
    let platform = Platform::paper();
    // One representative instance per testbed: the default portfolio
    // (every non-routed catalog member, chunk size inherited from the
    // outer spec) is best-of-all, so it can never lose to either paper
    // heuristic alone.
    for tb in Testbed::ALL {
        let n = 30;
        let g = tb.generate(n, PAPER_C);
        let spec = SchedulerSpec {
            b: Some(tb.paper_best_b()),
            seed: Some(0),
            ..SchedulerSpec::named("portfolio")
        };
        let portfolio = registry::build(&spec).expect("default portfolio builds");
        let sched = portfolio.schedule(&g, &platform, model);
        assert!(
            onesched::sim::validate(&g, &platform, model, &sched).is_empty(),
            "{tb}: portfolio winner must validate"
        );
        for e in fixture
            .entries
            .iter()
            .filter(|e| e.topology == "paper" && e.n == n && e.testbed == tb.name())
        {
            assert!(
                sched.makespan() <= e.makespan + EPS,
                "{tb}: portfolio ({}) lost to {} ({})",
                sched.makespan(),
                e.scheduler,
                e.makespan
            );
        }
    }
}

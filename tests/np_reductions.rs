//! Empirical verification of the paper's two NP-completeness reductions:
//! the constructed scheduling instance meets its time bound **iff** the
//! original 2-PARTITION instance is a yes-instance (Theorem 1 and
//! Theorem 2).

use onesched::exact::commsched;
use onesched::exact::partition::{two_partition, two_partition_equal_cardinality, PartitionResult};
use onesched::exact::reduction::{comm_sched_instance, fork_sched_instance};

/// Small 2-PARTITION instances with known answers.
fn yes_instances() -> Vec<Vec<u64>> {
    vec![
        vec![1, 1],
        vec![3, 3],
        vec![1, 2, 3],
        vec![1, 5, 5, 1],
        vec![2, 4, 6, 4, 2, 6],
        vec![7, 3, 2, 2],
        vec![10, 5, 5],
    ]
}

fn no_instances() -> Vec<Vec<u64>> {
    vec![
        vec![1, 2],
        vec![2, 3, 4],  // sum 9, odd
        vec![1, 1, 10], // sum 12, but 6 unreachable
        vec![5, 7],
        vec![2, 2, 9, 1], // sum 14, target 7: {2,2,1}=5, {9}... 9>7 alone? 2+2+1=5, no 7 -> no
    ]
}

#[test]
fn partition_oracle_agrees_with_labels() {
    for a in yes_instances() {
        assert!(two_partition(&a).is_yes(), "{a:?} should be yes");
    }
    for a in no_instances() {
        assert!(!two_partition(&a).is_yes(), "{a:?} should be no");
    }
}

/// Theorem 1 (§3): the FORK-SCHED instance admits a schedule of makespan
/// ≤ T iff the 2-PARTITION instance has an *equal-cardinality* solution
/// (the variant the construction encodes; see the reduction docs).
#[test]
fn theorem1_fork_sched_equivalence() {
    for a in yes_instances().into_iter().chain(no_instances()) {
        let expected = two_partition_equal_cardinality(&a).is_yes();
        let (inst, t) = fork_sched_instance(&a);
        let achievable = inst.decide(t);
        assert_eq!(
            achievable,
            expected,
            "FORK-SCHED({a:?}): schedule <= {t} achievable = {achievable}, \
             but equal-cardinality 2-PARTITION solvable = {expected} (optimal = {})",
            inst.optimal_makespan()
        );
    }
}

/// For yes-instances, the paper's explicit schedule construction matches
/// the optimum exactly (A = A1 ∪ {two padding children} on P0).
#[test]
fn theorem1_yes_instances_meet_bound_exactly() {
    for a in yes_instances() {
        if !two_partition_equal_cardinality(&a).is_yes() {
            continue; // bound only reachable with an equal-cardinality split
        }
        let (inst, t) = fork_sched_instance(&a);
        let opt = inst.optimal_makespan();
        assert!(
            (opt - t).abs() < 1e-9,
            "{a:?}: optimal {opt} should equal the bound {t} exactly"
        );
    }
}

/// For no-instances, the optimum must strictly exceed the bound.
#[test]
fn theorem1_no_instances_miss_bound() {
    for a in no_instances()
        .into_iter()
        .chain([vec![1, 2, 3], vec![7, 3, 2, 2]])
    {
        // the extra instances are plain-yes but equal-cardinality-no
        assert!(!two_partition_equal_cardinality(&a).is_yes());
        let (inst, t) = fork_sched_instance(&a);
        assert!(
            inst.optimal_makespan() > t + 1e-9,
            "{a:?}: no equal-cardinality partition, so the bound {t} must be unreachable"
        );
    }
}

/// Theorem 2 (appendix): the COMM-SCHED instance admits a message schedule
/// of makespan ≤ T = 2S iff the 2-PARTITION instance has a solution.
#[test]
fn theorem2_comm_sched_equivalence() {
    for a in yes_instances().into_iter().chain(no_instances()) {
        if a.len() > 6 {
            continue; // keep the exact search fast
        }
        let expected = two_partition(&a).is_yes();
        let (inst, t) = comm_sched_instance(&a);
        let result = commsched::solve(&inst, 20_000_000);
        assert!(
            result.nodes <= 20_000_000,
            "search must complete for exactness"
        );
        let achievable = result.makespan <= t + 1e-9;
        assert_eq!(
            achievable, expected,
            "COMM-SCHED({a:?}): optimal {} vs bound {t}, \
             but 2-PARTITION solvable = {expected}",
            result.makespan
        );
    }
}

/// The witness partition of a yes-instance yields a concrete valid message
/// schedule meeting the bound (the constructive direction of the proof).
#[test]
fn theorem2_witness_schedule_construction() {
    for a in yes_instances() {
        let PartitionResult::Yes(half) = two_partition(&a) else {
            panic!("{a:?} should be yes");
        };
        let s: u64 = a.iter().sum::<u64>() / 2;
        // Build the schedule from the proof: P0 sends A1's messages in
        // [0, S], then A2's in [S, 2S]; P_{n+i} -> P_i goes at [S, 2S] for
        // i in A1 and [0, S] for i in A2.
        let in_a1 = |i: usize| half.contains(&i);
        let mut t_cursor = 0.0;
        let mut p0_sends = Vec::new();
        for (i, &ai) in a.iter().enumerate() {
            if in_a1(i) {
                p0_sends.push((i, t_cursor, t_cursor + ai as f64));
                t_cursor += ai as f64;
            }
        }
        assert!((t_cursor - s as f64).abs() < 1e-9);
        for (i, &ai) in a.iter().enumerate() {
            if !in_a1(i) {
                p0_sends.push((i, t_cursor, t_cursor + ai as f64));
                t_cursor += ai as f64;
            }
        }
        assert!(
            (t_cursor - 2.0 * s as f64).abs() < 1e-9,
            "P0 busy exactly 2S"
        );
        // P_i's receive port: a_i window plus the S-message window must fit
        // disjointly in [0, 2S].
        for (i, start, end) in p0_sends {
            let (s_start, s_end) = if in_a1(i) {
                (s as f64, 2.0 * s as f64) // S-message after the a_i message
            } else {
                (0.0, s as f64)
            };
            let overlap = start < s_end && s_start < end;
            assert!(
                !overlap || a[i] == 0,
                "{a:?}: P{i}'s two receptions overlap ([{start},{end}) vs [{s_start},{s_end}))"
            );
        }
    }
}

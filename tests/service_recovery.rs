//! Fault-injection harness for the durable daemon: SIGKILL `onesched-svc`
//! mid-batch at several points, drop a TCP connection mid-line, inject a
//! poison job into the ledger, restart — and require every surviving
//! result to be bit-identical to an uninterrupted run of the same batch.
//!
//! The determinism that makes the paper's experiments reproducible is what
//! makes recovery *testable*: a replayed job has exactly one correct
//! answer, so the diff against the uninterrupted run has no tolerance
//! band.

use onesched::service::ledger::{key_hash, parse_ledger, Ledger, LedgerRecord};
use onesched::service::protocol::{
    ErrorResponse, OpProbe, ReadyResponse, Request, ResultResponse, SimResultResponse,
    StatsResponse,
};
use onesched::service::workloads::chaos_requests;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn temp_ledger(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "onesched-recovery-{}-{tag}.ndjson",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&p);
    p
}

/// Spawn the daemon on an ephemeral port with a ledger, returning the
/// child and the bound address from its `ready` line.
fn spawn_daemon(ledger: &Path, workers: usize, extra: &[&str]) -> (Child, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_onesched-svc"))
        .args([
            "serve",
            "--tcp",
            "127.0.0.1:0",
            "--workers",
            &workers.to_string(),
            "--ledger",
        ])
        .arg(ledger)
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn onesched-svc");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read ready line");
    let ready: ReadyResponse = serde_json::from_str(line.trim()).expect("parse ready line");
    assert_eq!(ready.op, "ready");
    (child, ready.addr)
}

fn connect(addr: &str) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(addr).expect("connect to daemon");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    let reader = BufReader::new(stream.try_clone().unwrap());
    (stream, reader)
}

fn send(stream: &mut TcpStream, req: &Request) {
    let line = serde_json::to_string(req).expect("serialize request");
    writeln!(stream, "{line}").expect("send request");
    stream.flush().expect("flush request");
}

fn read_line(reader: &mut BufReader<TcpStream>) -> String {
    let mut line = String::new();
    reader.read_line(&mut line).expect("read response line");
    assert!(line.ends_with('\n'), "truncated response: {line:?}");
    line.trim().to_string()
}

fn graceful_shutdown(mut child: Child, stream: &mut TcpStream, reader: &mut BufReader<TcpStream>) {
    send(stream, &Request::shutdown());
    let _ = read_line(reader);
    let deadline = Instant::now() + Duration::from_secs(30);
    while child.try_wait().expect("poll daemon").is_none() {
        if Instant::now() > deadline {
            let _ = child.kill();
            panic!("daemon did not exit after shutdown");
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// A result line reduced to its deterministic payload: everything except
/// wall-clock timings (`construct_ms`, `exec_ms`) and `cache_hit`, which
/// legitimately differ between a fresh run and a post-recovery one.
fn canonical(line: &str) -> String {
    let probe: OpProbe = serde_json::from_str(line).expect("parse op");
    match probe.op.as_str() {
        "result" => {
            let r: ResultResponse = serde_json::from_str(line).unwrap();
            format!(
                "result|{}|{}|{}|{}|{}|{}|{}|{}",
                r.scheduler,
                r.model,
                r.tasks,
                r.makespan,
                r.speedup,
                r.effective_comms,
                r.fingerprint,
                r.violations
            )
        }
        "sim-result" => {
            let r: SimResultResponse = serde_json::from_str(line).unwrap();
            format!(
                "sim|{}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{}",
                r.scheduler,
                r.model,
                r.policy,
                r.seed,
                r.tasks,
                r.static_makespan,
                r.executed_makespan,
                r.degradation,
                r.fingerprint,
                r.trace_fingerprint,
                r.violations
            )
        }
        other => panic!("unexpected op {other} in {line}"),
    }
}

/// The id a response line answers.
fn response_id(line: &str) -> String {
    #[derive(serde::Deserialize)]
    struct IdProbe {
        #[serde(default)]
        id: Option<String>,
    }
    serde_json::from_str::<IdProbe>(line)
        .ok()
        .and_then(|p| p.id)
        .unwrap_or_default()
}

/// Run the whole batch against a fresh connection and collect id →
/// canonical payload, asserting each id is answered exactly once.
fn run_batch(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>) -> HashMap<String, String> {
    let batch = chaos_requests(42);
    for req in &batch {
        send(stream, req);
    }
    let mut results = HashMap::new();
    for _ in 0..batch.len() {
        let line = read_line(reader);
        let prev = results.insert(response_id(&line), canonical(&line));
        assert_eq!(prev, None, "job answered twice: {line}");
    }
    assert_eq!(results.len(), batch.len(), "every job answered");
    results
}

/// The tentpole invariant: kill the daemon at several points mid-batch
/// (with a connection additionally dropped mid-request-line), restart on
/// the same ledger, resubmit — and every answer is bit-identical to an
/// uninterrupted same-seed run. No job lost, none answered twice.
#[test]
fn sigkill_mid_batch_recovers_bit_identically() {
    // Reference: the uninterrupted run.
    let ref_ledger = temp_ledger("reference");
    let (child, addr) = spawn_daemon(&ref_ledger, 4, &[]);
    let (mut stream, mut reader) = connect(&addr);
    let reference = run_batch(&mut stream, &mut reader);
    graceful_shutdown(child, &mut stream, &mut reader);

    let batch = chaos_requests(42);
    // Kill points spread across the batch (early: little durable state;
    // late: most jobs already answered), with the kill delay varied so
    // different rounds catch the daemon at different lifecycle stages —
    // jobs still queued (requeued on recovery), mid-construction, and
    // already answered (rehydrated on recovery).
    for (round, (kill_after, kill_delay_ms)) in [
        (2usize, 10u64),
        (batch.len() / 2, 60),
        (batch.len() - 1, 300),
    ]
    .into_iter()
    .enumerate()
    {
        let ledger = temp_ledger(&format!("kill{round}"));
        let (mut child, addr) = spawn_daemon(&ledger, 2, &[]);
        let (mut stream, _reader) = connect(&addr);
        for req in batch.iter().take(kill_after) {
            send(&mut stream, req);
        }
        // A second client dies mid-line: the daemon must simply discard
        // the partial request, without disturbing accepted work.
        {
            let (mut torn, _) = connect(&addr);
            let full = serde_json::to_string(&batch[kill_after]).unwrap();
            let half = &full.as_bytes()[..full.len() / 2];
            torn.write_all(half).unwrap();
            torn.flush().unwrap();
            // dropped here with no newline ever sent
        }
        // Let intake journal (some of) the accepted jobs, then SIGKILL
        // mid-flight — workers may be anywhere between "not yet popped"
        // and "answer already streamed".
        std::thread::sleep(Duration::from_millis(kill_delay_ms));
        child.kill().expect("SIGKILL daemon");
        child.wait().expect("reap daemon");
        // What actually reached the kernel before the kill, read with the
        // daemon's own torn-tail-tolerant parser — the ground truth for
        // how much recovery must find.
        let journaled = parse_ledger(&std::fs::read(&ledger).unwrap_or_default())
            .records
            .iter()
            .filter(|r| r.event == "submitted")
            .count();

        // Restart on the same ledger; the surviving client resubmits the
        // whole batch.
        let (child, addr) = spawn_daemon(&ledger, 2, &[]);
        let (mut stream, mut reader) = connect(&addr);
        let recovered = run_batch(&mut stream, &mut reader);
        for (id, expected) in &reference {
            assert_eq!(
                recovered.get(id),
                Some(expected),
                "round {round} (kill after {kill_after}): {id} drifted across the crash"
            );
        }
        // The ledger really did carry state across the kill: every job
        // journaled before the SIGKILL was recovered (requeued or
        // rehydrated) — none lost.
        send(&mut stream, &Request::stats());
        let stats: StatsResponse = serde_json::from_str(&read_line(&mut reader)).unwrap();
        assert_eq!(
            stats.jobs_recovered as usize, journaled,
            "round {round}: recovery count != journaled submissions"
        );
        assert!(stats.ledger_bytes > 0, "round {round}: ledger not growing");
        graceful_shutdown(child, &mut stream, &mut reader);
        let _ = std::fs::remove_file(&ledger);
    }
    let _ = std::fs::remove_file(&ref_ledger);
}

/// Poison injection: a ledger recording a job that `started` on three
/// daemons without ever completing is tombstoned at recovery, and
/// resubmitting the same spec is rejected at intake with kind `poisoned`
/// instead of crash-looping a fourth time.
#[test]
fn crash_looping_job_is_poisoned_and_rejected() {
    let ledger_path = temp_ledger("poison");
    let batch = chaos_requests(7);
    let poison_req = &batch[0];
    let spec = poison_req.job.clone().expect("chaos jobs have specs");
    let hash = key_hash(&spec.resolve().expect("chaos specs resolve").key);
    {
        let (mut ledger, _) = Ledger::open(&ledger_path).expect("open ledger");
        ledger
            .append(&LedgerRecord::submitted(
                0,
                "looper",
                &hash,
                0,
                spec.clone(),
                None,
            ))
            .unwrap();
        for _ in 0..3 {
            ledger
                .append(&LedgerRecord::started(0, "looper", &hash))
                .unwrap();
        }
        ledger.sync().unwrap();
    }
    let (child, addr) = spawn_daemon(&ledger_path, 2, &["--max-retries", "2"]);
    let (mut stream, mut reader) = connect(&addr);
    let mut resub = poison_req.clone();
    resub.id = Some("poison-resubmit".into());
    send(&mut stream, &resub);
    let line = read_line(&mut reader);
    let e: ErrorResponse =
        serde_json::from_str(&line).unwrap_or_else(|err| panic!("{line:?}: {err}"));
    assert_eq!(e.kind.as_deref(), Some("poisoned"), "{line}");
    // Other work is unaffected by the tombstone.
    let mut other = batch[1].clone();
    other.id = Some("healthy".into());
    send(&mut stream, &other);
    let line = read_line(&mut reader);
    let probe: OpProbe = serde_json::from_str(&line).unwrap();
    assert_ne!(probe.op, "error", "healthy job runs: {line}");
    graceful_shutdown(child, &mut stream, &mut reader);
    let _ = std::fs::remove_file(&ledger_path);
}

/// Timeouts and overload shedding surface as typed protocol errors over
/// the wire: with a zero timeout every submission answers `timeout`; the
/// counters show up in `stats`.
#[test]
fn timeouts_reach_the_client_with_kind_and_counters() {
    let ledger_path = temp_ledger("timeout");
    let (child, addr) = spawn_daemon(&ledger_path, 2, &["--timeout-ms", "0"]);
    let (mut stream, mut reader) = connect(&addr);
    let mut req = chaos_requests(3)[0].clone();
    req.id = Some("doomed".into());
    send(&mut stream, &req);
    let line = read_line(&mut reader);
    let e: ErrorResponse =
        serde_json::from_str(&line).unwrap_or_else(|err| panic!("{line:?}: {err}"));
    assert_eq!(e.kind.as_deref(), Some("timeout"), "{line}");
    send(&mut stream, &Request::stats());
    let stats: StatsResponse = serde_json::from_str(&read_line(&mut reader)).unwrap();
    assert_eq!(stats.jobs_timed_out, 1);
    graceful_shutdown(child, &mut stream, &mut reader);
    let _ = std::fs::remove_file(&ledger_path);
}
